"""Per-role-instance control-flow graphs and guaranteed execution prefixes.

:func:`build_cfg` turns a role body into an explicit CFG over the six
statement kinds (assign, send, receive, if, guarded-do, skip) — the
structural substrate for flow-sensitive checks and a convenient artifact
to test the statement walker against (nested IFs, guarded-DO arms,
replicators).

:func:`guaranteed_prefix` extracts, for one concrete role *instance*, the
sequence of communications that **must** happen, in order, before anything
data-dependent can occur.  The walk folds IF conditions that are static for
the instance (the family index variable is a known constant, so Figure 4's
``IF i = 1`` resolves per recipient) and stops — marking the prefix
*incomplete* — at the first genuinely dynamic point: an unfoldable IF
condition, any guarded DO, or a communication whose partner index cannot
be resolved.  Everything in a complete prefix is unconditional, which is
what makes deadlock findings built on it *guaranteed* rather than
possible (see DESIGN.md §11 for the soundness argument).

A communication whose resolved target is outside the partner family's
bounds is a rendezvous with an *absent* role: under the default
DISTINGUISHED unfilled-role policy the engine returns the distinguished
value and the role carries on, so the walk records no operation and
continues — mirroring the runtime exactly.
"""

from __future__ import annotations

import dataclasses

from ..lang import ast_nodes as ast
from ..lang.analysis import ProgramInfo
from .graph import Instance, static_eval

# ---------------------------------------------------------------------------
# Control-flow graph
# ---------------------------------------------------------------------------


@dataclasses.dataclass(slots=True)
class CFGNode:
    """One CFG node: a statement occurrence (or the entry/exit sentinel).

    ``stmt`` carries the AST statement the node stands for (``None`` for
    the entry/exit sentinels) so flow queries — notably the parameterized
    checker's exactly-once test — can be asked about a specific statement
    occurrence rather than a (kind, line) fingerprint.
    """

    id: int
    kind: str                  # "entry" | "exit" | "assign" | "send" |
                               # "receive" | "if" | "do" | "skip"
    line: int
    succs: list[int] = dataclasses.field(default_factory=list)
    stmt: "ast.Stmt | None" = None


class CFG:
    """A role body's control-flow graph.  Node 0 is entry, node 1 exit."""

    def __init__(self) -> None:
        self.nodes: list[CFGNode] = [CFGNode(0, "entry", 0),
                                     CFGNode(1, "exit", 0)]

    @property
    def entry(self) -> CFGNode:
        return self.nodes[0]

    @property
    def exit(self) -> CFGNode:
        return self.nodes[1]

    def add(self, kind: str, line: int,
            stmt: "ast.Stmt | None" = None) -> CFGNode:
        node = CFGNode(len(self.nodes), kind, line, stmt=stmt)
        self.nodes.append(node)
        return node

    def link(self, src: CFGNode, dst: CFGNode) -> None:
        if dst.id not in src.succs:
            src.succs.append(dst.id)

    def kinds(self) -> dict[str, int]:
        """Node count per statement kind (testing/metrics aid)."""
        counts: dict[str, int] = {}
        for node in self.nodes:
            counts[node.kind] = counts.get(node.kind, 0) + 1
        return counts


_KIND = {ast.Assign: "assign", ast.SendStmt: "send",
         ast.ReceiveStmt: "receive", ast.IfStmt: "if",
         ast.GuardedDo: "do", ast.SkipStmt: "skip"}


def build_cfg(body: tuple[ast.Stmt, ...]) -> CFG:
    """Build the CFG of a role body."""
    cfg = CFG()

    def chain(stmts: tuple[ast.Stmt, ...],
              preds: list[CFGNode]) -> list[CFGNode]:
        """Wire ``stmts`` after ``preds``; returns the new dangling ends."""
        for stmt in stmts:
            node = cfg.add(_KIND[type(stmt)], stmt.line, stmt=stmt)
            for pred in preds:
                cfg.link(pred, node)
            if isinstance(stmt, ast.IfStmt):
                then_ends = chain(stmt.then_body, [node])
                if stmt.else_body is not None:
                    else_ends = chain(stmt.else_body, [node])
                else:
                    else_ends = [node]     # fall through the condition
                preds = then_ends + else_ends
            elif isinstance(stmt, ast.GuardedDo):
                # Each arm body loops back to the DO head; the DO itself
                # falls through when no guard is enabled.
                for arm in stmt.arms:
                    arm_stmts = arm.body
                    if arm.comm is not None:
                        arm_stmts = (arm.comm,) + arm_stmts
                    for end in chain(arm_stmts, [node]):
                        cfg.link(end, node)
                preds = [node]
            else:
                preds = [node]
        return preds

    ends = chain(body, [cfg.entry])
    for end in ends:
        cfg.link(end, cfg.exit)
    if not body:
        cfg.link(cfg.entry, cfg.exit)
    return cfg


# ---------------------------------------------------------------------------
# Flow queries
# ---------------------------------------------------------------------------


def _reachable(cfg: CFG, start: int, avoid: int | None = None) -> set[int]:
    """Node ids reachable from ``start`` (not crossing ``avoid``)."""
    seen: set[int] = set()
    stack = [start]
    while stack:
        node = stack.pop()
        if node in seen or node == avoid:
            continue
        seen.add(node)
        stack.extend(cfg.nodes[node].succs)
    return seen


def node_for_stmt(cfg: CFG, stmt: "ast.Stmt") -> CFGNode | None:
    """The node built for this exact statement occurrence (by identity)."""
    for node in cfg.nodes:
        if node.stmt is stmt:
            return node
    return None


def passes_exactly_once(cfg: CFG, node_id: int) -> bool:
    """Does every entry-to-exit path pass through ``node_id`` exactly once?

    True iff the node dominates the exit (no path avoids it) and cannot
    re-reach itself (no path repeats it).  This is the side condition the
    parameterized checker's counted-foreach abstraction relies on: a
    family member whose rendezvous site passes exactly once lets "member
    has fired" be read off the member's control location (DESIGN.md §16).
    """
    avoiding = _reachable(cfg, cfg.entry.id, avoid=node_id)
    if cfg.exit.id in avoiding:
        return False               # some path reaches exit around the node
    after = set()
    for succ in cfg.nodes[node_id].succs:
        after |= _reachable(cfg, succ)
    return node_id not in after    # no path loops back through the node


# ---------------------------------------------------------------------------
# Guaranteed communication prefixes
# ---------------------------------------------------------------------------


@dataclasses.dataclass(slots=True)
class PrefixOp:
    """One unconditional communication in an instance's guaranteed prefix.

    ``next_line`` is the source line of the statement that follows this
    operation in the guaranteed walk (used to report code made unreachable
    by a guaranteed block), or ``None`` when nothing follows.
    """

    kind: str                  # "send" | "recv"
    partner: Instance
    line: int
    next_line: int | None = None


@dataclasses.dataclass(slots=True)
class Prefix:
    """An instance's guaranteed communication prefix.

    ``complete`` is True when the walk reached the end of the body — the
    instance performs exactly ``ops`` and terminates.  False means the
    instance reached a dynamic point and may do *anything* afterwards
    (including further communication), so nothing may be concluded about
    its behavior beyond ``ops``.
    """

    instance: Instance
    ops: list[PrefixOp]
    complete: bool


class _PrefixWalker:
    def __init__(self, info: ProgramInfo, instance: Instance,
                 bindings: dict[str, int]):
        self.info = info
        self.instance = instance
        self.bindings = bindings
        self.ops: list[PrefixOp] = []

    def _note_follower(self, line: int) -> None:
        if self.ops and self.ops[-1].next_line is None:
            self.ops[-1].next_line = line

    def walk(self, stmts: tuple[ast.Stmt, ...]) -> bool:
        """Walk ``stmts``; returns False when a dynamic point cut us off."""
        for stmt in stmts:
            self._note_follower(stmt.line)
            if isinstance(stmt, (ast.Assign, ast.SkipStmt)):
                continue
            if isinstance(stmt, (ast.SendStmt, ast.ReceiveStmt)):
                if not self._comm(stmt):
                    return False
                continue
            if isinstance(stmt, ast.IfStmt):
                condition = static_eval(stmt.condition, self.info.constants,
                                        self.bindings)
                if condition is None:
                    return False
                branch = stmt.then_body if condition else stmt.else_body
                if branch is not None and not self.walk(branch):
                    return False
                continue
            if isinstance(stmt, ast.GuardedDo):
                return False
        return True

    def _comm(self, stmt: ast.SendStmt | ast.ReceiveStmt) -> bool:
        if isinstance(stmt, ast.SendStmt):
            kind, ref = "send", stmt.target
        else:
            kind, ref = "recv", stmt.source
        index: int | None = None
        if ref.index is not None:
            value = static_eval(ref.index, self.info.constants, self.bindings)
            if isinstance(value, bool) or not isinstance(value, int):
                return False           # dynamic partner: give up
            index = value
        bounds = self.info.family_bounds.get(ref.name)
        if bounds is not None and index is not None:
            low, high = bounds
            if not low <= index <= high:
                # Absent partner: the engine yields the distinguished
                # UNFILLED value and execution continues (SCR003 is
                # reported separately by the graph pass).
                return True
        self.ops.append(PrefixOp(kind=kind, partner=(ref.name, index),
                                 line=stmt.line))
        return True


def guaranteed_prefix(role: ast.RoleDeclNode, instance: Instance,
                      bindings: dict[str, int], info: ProgramInfo) -> Prefix:
    """The guaranteed communication prefix of one role instance."""
    walker = _PrefixWalker(info, instance, bindings)
    complete = walker.walk(role.body)
    return Prefix(instance=instance, ops=walker.ops, complete=complete)
