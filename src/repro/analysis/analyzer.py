"""The analyzer entry points: run every check, produce a :class:`Report`.

:func:`analyze_program` is the library API; :func:`analyze_source` adds
parsing, and :func:`analyze_corpus` runs the shipped figure sources (plus
any extra labeled sources) — the CLI and CI both build on these.

Check inventory (codes in :mod:`repro.analysis.diagnostics`):

* index checks (SCR003 out-of-bounds, SCR004 self-targeting) and the
  index-aware unmatched-communication check (SCR001/SCR002) over the
  unrolled communication graph of :mod:`repro.analysis.graph`;
* guaranteed-deadlock analysis (SCR005/SCR006/SCR007) over the
  per-instance prefixes of :mod:`repro.analysis.cfg` via
  :mod:`repro.analysis.deadlock`;
* critical-set feasibility (SCR008/SCR009) via
  :mod:`repro.analysis.critical`.
"""

from __future__ import annotations

from ..lang import ast_nodes as ast
from ..lang.analysis import ProgramInfo, analyze
from ..lang.parser import parse_script
from .critical import analyze_critical
from .deadlock import analyze_deadlocks
from .diagnostics import Report
from .graph import (CommSite, collect_sites, instance_label,
                    is_self_targeting, out_of_bounds, terminated_partners)


def _check_indices(sites: list[CommSite], info: ProgramInfo,
                   report: Report) -> set[int]:
    """SCR003/SCR004; returns the site ids excluded from matching."""
    excluded: set[int] = set()
    for position, site in enumerate(sites):
        if out_of_bounds(site, info):
            excluded.add(position)
            low, high = info.family_bounds[site.partner_role]
            verb = "sends to" if site.kind == "send" else "receives from"
            report.emit(
                "SCR003", site.line, instance_label(site.owner),
                f"{instance_label(site.owner)} {verb} "
                f"{site.partner_role}[{site.partner_index}], outside the "
                f"family bounds {low}..{high}; the partner is absent in "
                f"every performance",
                partner=f"{site.partner_role}[{site.partner_index}]")
        elif is_self_targeting(site):
            excluded.add(position)
            verb = "sends to" if site.kind == "send" else "receives from"
            report.emit(
                "SCR004", site.line, instance_label(site.owner),
                f"{instance_label(site.owner)} {verb} itself; a "
                f"synchronous rendezvous needs two distinct instances, so "
                f"this communication can never commit",
                partner=instance_label(site.owner))
    return excluded


def _check_unmatched(program: ast.ScriptProgram, info: ProgramInfo,
                     sites: list[CommSite], excluded: set[int],
                     terminated_refs: dict[str, set[str]],
                     report: Report) -> None:
    """SCR001/SCR002: per-instance sends/receives with no possible partner.

    A send from instance A to instance B is matched when B's body contains
    a receive whose source could be A (an unresolved index counts as
    "could be"); symmetrically for receives.  Sites whose owning role
    consults the partner's ``terminated`` status are exempt — absence is
    being handled, the paper's sanctioned pattern.
    """
    sends: list[tuple[int, CommSite]] = []
    receives: list[tuple[int, CommSite]] = []
    for position, site in enumerate(sites):
        if position in excluded:
            continue
        (sends if site.kind == "send" else receives).append((position, site))

    family_bounds = info.family_bounds

    def candidates(site: CommSite) -> list:
        """Instances the site's partner reference could denote."""
        bounds = family_bounds.get(site.partner_role)
        if bounds is None:
            return [(site.partner_role, None)]
        if site.partner_index is not None:
            return [(site.partner_role, site.partner_index)]
        low, high = bounds
        return [(site.partner_role, i) for i in range(low, high + 1)]

    def could_match(site: CommSite, opposite: list[tuple[int, CommSite]]
                    ) -> bool:
        owner_name, owner_index = site.owner
        for target in candidates(site):
            if target == site.owner:
                continue               # self-pairing never commits
            for _position, other in opposite:
                if other.owner != target:
                    continue
                if other.partner_role != owner_name:
                    continue
                if other.partner_index is not None \
                        and other.partner_index != owner_index:
                    continue
                return True
        return False

    for _position, site in sends:
        if site.partner_role in terminated_refs.get(site.owner[0], set()):
            continue
        if not could_match(site, receives):
            report.emit(
                "SCR001", site.line, instance_label(site.owner),
                f"{instance_label(site.owner)} sends to "
                f"{site.partner_role!r}, but no instance of "
                f"{site.partner_role!r} ever receives from "
                f"{site.owner[0]!r} (send can never rendezvous)",
                partner=site.partner_role)
    for _position, site in receives:
        if site.partner_role in terminated_refs.get(site.owner[0], set()):
            continue
        if not could_match(site, sends):
            report.emit(
                "SCR002", site.line, instance_label(site.owner),
                f"{instance_label(site.owner)} receives from "
                f"{site.partner_role!r}, but no instance of "
                f"{site.partner_role!r} ever sends to "
                f"{site.owner[0]!r} (receive can never rendezvous)",
                partner=site.partner_role)


def analyze_program(program: ast.ScriptProgram,
                    info: ProgramInfo | None = None,
                    label: str = "<script>", *,
                    parameterized: bool = False,
                    max_states: int | None = None) -> Report:
    """Run every static check over a parsed (semantically valid) program.

    With ``parameterized=True`` the counter-abstraction model checker of
    :mod:`repro.analysis.param` also runs, proving deadlock freedom and
    critical-set liveness for *every* family size (SCR010/SCR011/SCR012)
    and filling ``report.parameterized`` with its state-space counters.

    Raises :class:`~repro.errors.SemanticError` if the program fails the
    semantic analysis the checks build on.
    """
    if info is None:
        info = analyze(program)
    report = Report(label=label, script=program.name)
    sites = collect_sites(program, info)
    terminated_refs = terminated_partners(program)
    excluded = _check_indices(sites, info, report)
    _check_unmatched(program, info, sites, excluded, terminated_refs, report)
    analyze_deadlocks(program, info, report)
    analyze_critical(program, info, sites, terminated_refs, report)
    if parameterized:
        from .param import DEFAULT_MAX_STATES, run_parameterized
        run_parameterized(program, info, report,
                          max_states=max_states or DEFAULT_MAX_STATES)
    return report


def analyze_source(source: str, label: str = "<script>", *,
                   parameterized: bool = False,
                   max_states: int | None = None) -> Report:
    """Parse, semantically check, and analyze script-language source.

    Raises :class:`~repro.errors.ScriptLangError` (parse or semantic) when
    the source is not a valid program — static analysis needs one.
    """
    program = parse_script(source)
    return analyze_program(program, label=label,
                           parameterized=parameterized,
                           max_states=max_states)


def figure_corpus() -> list[tuple[str, str]]:
    """The shipped paper figures as (label, source) pairs."""
    from ..lang import figures
    return [("fig3", figures.FIGURE3_STAR_BROADCAST),
            ("fig4", figures.FIGURE4_PIPELINE_BROADCAST),
            ("fig5", figures.FIGURE5_DATABASE)]


def analyze_corpus(extra: list[tuple[str, str]] | None = None, *,
                   parameterized: bool = False) -> list[Report]:
    """Analyze the shipped figures plus any extra (label, source) pairs."""
    reports = []
    for label, source in figure_corpus() + list(extra or ()):
        reports.append(analyze_source(source, label=label,
                                      parameterized=parameterized))
    return reports


def legacy_lint_warnings(program: ast.ScriptProgram) -> list[str]:
    """The old ``lint_communications`` strings from the new analyzer.

    Unmatched-communication findings (SCR001/SCR002) are deduplicated to
    role-name granularity and rendered in the historical message format —
    all sends first, then all receives, each sorted by line.
    """
    report = analyze_program(program)
    seen: set[tuple] = set()
    warnings: list[str] = []
    for finding in sorted(report.by_code("SCR001"),
                          key=lambda f: (f.line, f.role)):
        sender = finding.role.split("[")[0]
        key = (finding.line, sender, finding.partner)
        if key in seen:
            continue
        seen.add(key)
        warnings.append(
            f"line {finding.line}: role {sender!r} sends to "
            f"{finding.partner!r}, but {finding.partner!r} never receives "
            f"from {sender!r} (send can never rendezvous)")
    for finding in sorted(report.by_code("SCR002"),
                          key=lambda f: (f.line, f.role)):
        receiver = finding.role.split("[")[0]
        key = (finding.line, receiver, finding.partner)
        if key in seen:
            continue
        seen.add(key)
        warnings.append(
            f"line {finding.line}: role {receiver!r} receives from "
            f"{finding.partner!r}, but {finding.partner!r} never sends to "
            f"{receiver!r} (receive can never rendezvous)")
    return warnings
