"""Synchronous wait-for analysis: guaranteed deadlocks and blocks.

Built on the guaranteed prefixes of :mod:`repro.analysis.cfg`: every
operation in a prefix *must* be attempted, in order, by its instance, so
an abstract, synchronous execution of the prefixes is faithful to every
engine schedule.  The matcher repeatedly commits complementary current
operations (A's ``send -> B`` against B's ``recv <- A``); commits only
ever enable more commits and each instance has a single current
operation, so the fixpoint is confluent — order does not matter.

When no more pairs can commit, instances still holding operations are
*stuck*.  A stuck instance may still progress if its partner's behavior is
unknown (the partner's prefix was cut at a dynamic point), or —
transitively — if its partner may progress; propagating that through the
wait-for graph leaves a set of instances that are **guaranteed** blocked
in every run.  Among those, wait-for cycles are reported as rendezvous
deadlocks (SCR005); chains into a terminated or blocked partner as
guaranteed blocks (SCR006); and code following a guaranteed block as
unreachable (SCR007).
"""

from __future__ import annotations

from ..lang import ast_nodes as ast
from ..lang.analysis import ProgramInfo
from .cfg import Prefix, PrefixOp, guaranteed_prefix
from .diagnostics import Report
from .graph import Instance, instance_label, role_instances


def collect_prefixes(program: ast.ScriptProgram, info: ProgramInfo
                     ) -> dict[Instance, Prefix]:
    """The guaranteed prefix of every role instance, declaration order."""
    prefixes: dict[Instance, Prefix] = {}
    for role in program.roles:
        for instance, bindings in role_instances(role, info):
            prefixes[instance] = guaranteed_prefix(role, instance,
                                                   bindings, info)
    return prefixes


def _complementary(a: PrefixOp, a_inst: Instance,
                   b: PrefixOp, b_inst: Instance) -> bool:
    """Do ``a`` (of ``a_inst``) and ``b`` (of ``b_inst``) rendezvous?"""
    if a.kind == b.kind:
        return False
    return a.partner == b_inst and b.partner == a_inst


def _match_fixpoint(prefixes: dict[Instance, Prefix]) -> dict[Instance, int]:
    """Commit guaranteed rendezvous until quiescence; returns final pcs."""
    pcs = {instance: 0 for instance in prefixes}

    def current(instance: Instance) -> PrefixOp | None:
        prefix = prefixes[instance]
        pc = pcs[instance]
        return prefix.ops[pc] if pc < len(prefix.ops) else None

    changed = True
    while changed:
        changed = False
        for instance in prefixes:
            op = current(instance)
            if op is None:
                continue
            partner = op.partner
            if partner not in prefixes:
                continue
            partner_op = current(partner)
            if partner_op is None:
                continue
            if _complementary(op, instance, partner_op, partner):
                pcs[instance] += 1
                pcs[partner] += 1
                changed = True
    return pcs


def analyze_deadlocks(program: ast.ScriptProgram, info: ProgramInfo,
                      report: Report) -> None:
    """Emit SCR005/SCR006/SCR007 findings for guaranteed blocks."""
    prefixes = collect_prefixes(program, info)
    pcs = _match_fixpoint(prefixes)

    status: dict[Instance, str] = {}
    for instance, prefix in prefixes.items():
        if pcs[instance] >= len(prefix.ops):
            status[instance] = "done" if prefix.complete else "unknown"
        else:
            status[instance] = "stuck"

    stuck = [i for i in prefixes if status[i] == "stuck"]

    def partner_of(instance: Instance) -> Instance:
        return prefixes[instance].ops[pcs[instance]].partner

    # An instance whose partner's behavior is unknown might progress; so
    # might anything waiting (transitively) on such an instance.
    may_progress: set[Instance] = set()
    changed = True
    while changed:
        changed = False
        for instance in stuck:
            if instance in may_progress:
                continue
            partner = partner_of(instance)
            if partner not in prefixes \
                    or status[partner] == "unknown" \
                    or partner in may_progress:
                may_progress.add(instance)
                changed = True

    blocked = [i for i in stuck if i not in may_progress]
    blocked_set = set(blocked)

    # Wait-for cycles among the guaranteed-blocked instances.  Each
    # blocked instance has exactly one out-edge (its current partner), so
    # a colored walk finds every cycle exactly once.
    on_cycle: set[Instance] = set()
    cycles: list[list[Instance]] = []
    visited: set[Instance] = set()
    for start in blocked:
        if start in visited:
            continue
        path: list[Instance] = []
        seen_here: dict[Instance, int] = {}
        node = start
        while node in blocked_set and node not in visited \
                and node not in seen_here:
            seen_here[node] = len(path)
            path.append(node)
            node = partner_of(node)
        if node in seen_here:       # closed a new cycle
            cycle = path[seen_here[node]:]
            cycles.append(cycle)
            on_cycle.update(cycle)
        visited.update(path)

    verbs = {"send": "waits to send to", "recv": "waits to receive from"}
    complements = {"send": "receive", "recv": "send"}

    for cycle in cycles:
        # Canonical rotation: start at the lexicographically least label.
        labels = [instance_label(i) for i in cycle]
        pivot = labels.index(min(labels))
        cycle = cycle[pivot:] + cycle[:pivot]
        parts = []
        for member in cycle:
            op = prefixes[member].ops[pcs[member]]
            parts.append(f"{instance_label(member)} "
                         f"{verbs[op.kind]} {instance_label(op.partner)} "
                         f"(line {op.line})")
        head = cycle[0]
        head_op = prefixes[head].ops[pcs[head]]
        if len(cycle) == 1:
            message = (f"guaranteed block: {parts[0]} — an instance can "
                       f"never rendezvous with itself")
            report.emit("SCR006", head_op.line, instance_label(head),
                        message, partner=instance_label(head_op.partner))
        else:
            message = ("guaranteed rendezvous deadlock: "
                       + "; ".join(parts))
            report.emit("SCR005", head_op.line, instance_label(head),
                        message, partner=instance_label(head_op.partner))

    for instance in blocked:
        if instance in on_cycle:
            continue
        op = prefixes[instance].ops[pcs[instance]]
        partner = op.partner
        me = instance_label(instance)
        other = instance_label(partner)
        if status.get(partner) == "done":
            why = (f"{other} terminates without a matching "
                   f"{complements[op.kind]}")
        else:
            why = f"{other} is itself permanently blocked"
        report.emit("SCR006", op.line, me,
                    f"guaranteed block: {me} {verbs[op.kind]} {other} "
                    f"at line {op.line}, but {why}", partner=other)

    for instance in blocked:
        op = prefixes[instance].ops[pcs[instance]]
        if op.next_line is not None:
            report.emit(
                "SCR007", op.next_line, instance_label(instance),
                f"unreachable: {instance_label(instance)} is permanently "
                f"blocked at line {op.line}, so this statement can never "
                f"execute")
