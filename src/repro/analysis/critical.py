"""Critical-set and initiation feasibility checks (paper Section II).

A performance begins when *one* of the script's critical role sets is
consistently filled; roles outside the initiating set may remain unfilled
(*absent*) for the whole performance.  Two static consequences:

* an alternative critical set that strictly contains another alternative
  can never be the initiating set — the smaller set fills first as
  enrollments accumulate, so the larger alternative is dead weight and
  usually indicates a specification mistake (SCR009);
* a role that communicates with a *possibly-unfilled* partner (one some
  alternative does not require) must be prepared for the distinguished
  ``UNFILLED`` value.  In the script language the idiom is consulting
  ``partner.terminated`` (Figure 5 captures it in a boolean up front), so
  a role that communicates with a possibly-unfilled partner and never
  consults that partner's ``terminated`` status anywhere is flagged
  (SCR008).

With no explicit ``CRITICAL`` headers the entire cast is critical, so no
role is possibly unfilled and both checks are vacuous.
"""

from __future__ import annotations

from ..lang import ast_nodes as ast
from ..lang.analysis import ProgramInfo
from .diagnostics import Report
from .graph import CommSite, static_eval


def _expanded_sets(program: ast.ScriptProgram, info: ProgramInfo
                   ) -> list[tuple[frozenset, int]]:
    """Critical alternatives expanded to member level, with a source line.

    A bare family name expands to every member; an indexed item to that
    member; a singleton to its name.  The line is the smallest item line
    of the alternative (0 when items carry no line).
    """
    expanded: list[tuple[frozenset, int]] = []
    for alternative in program.critical_sets:
        members: set = set()
        lines: list[int] = []
        for item in alternative:
            if item.line:
                lines.append(item.line)
            bounds = info.family_bounds.get(item.name)
            if bounds is None:
                members.add(item.name)
            elif item.index is not None:
                index = static_eval(item.index, info.constants, {})
                members.add((item.name, index))
            else:
                low, high = bounds
                members.update((item.name, i)
                               for i in range(low, high + 1))
        expanded.append((frozenset(members), min(lines, default=0)))
    return expanded


def possibly_unfilled_roles(program: ast.ScriptProgram,
                            info: ProgramInfo) -> set[str]:
    """Role names some critical alternative does not (fully) require.

    A role is possibly unfilled when there exists an alternative whose
    members include no instance of it: if that alternative initiates the
    performance, the role may stay absent.  Granularity is the role name
    (an alternative naming ``manager[1]`` still counts the ``manager``
    family as required) — conservative in the quiet direction.
    """
    if not program.critical_sets:
        return set()
    role_names = {role.name for role in program.roles}
    unfilled: set[str] = set()
    for members, _line in _expanded_sets(program, info):
        named = {member if isinstance(member, str) else member[0]
                 for member in members}
        unfilled.update(role_names - named)
    return unfilled


def analyze_critical(program: ast.ScriptProgram, info: ProgramInfo,
                     sites: list[CommSite],
                     terminated_refs: dict[str, set[str]],
                     report: Report) -> None:
    """Emit SCR008/SCR009 findings."""
    expanded = _expanded_sets(program, info)

    # SCR009: a strict superset of another alternative can never initiate.
    for i, (members, line) in enumerate(expanded):
        for j, (other, _other_line) in enumerate(expanded):
            if i != j and members > other:
                report.emit(
                    "SCR009", line, program.name,
                    f"critical set alternative {i + 1} strictly contains "
                    f"alternative {j + 1}; the smaller set always fills "
                    f"first, so this alternative can never initiate a "
                    f"performance")
                break

    # SCR008: unguarded communication with a possibly-unfilled partner.
    unfilled = possibly_unfilled_roles(program, info)
    if not unfilled:
        return
    flagged: set[tuple[str, str]] = set()
    for site in sites:
        owner_role = site.owner[0]
        partner = site.partner_role
        if partner not in unfilled or partner == owner_role:
            continue
        if partner in terminated_refs.get(owner_role, set()):
            continue
        if (owner_role, partner) in flagged:
            continue
        flagged.add((owner_role, partner))
        report.emit(
            "SCR008", site.line, owner_role,
            f"role {owner_role!r} communicates with {partner!r}, which "
            f"is not in every critical set and may be unfilled, without "
            f"ever consulting {partner}.terminated", partner=partner)
