"""Static analysis for script programs (paper Section V).

"We believe scripts will simplify the specification of communication
subsystems and make the verification of such systems more practical" —
this package is that verification story: an index-aware communication
graph over unrolled role families, per-instance control-flow graphs and
guaranteed communication prefixes, a synchronous wait-for analysis that
detects *guaranteed* rendezvous deadlocks, critical-set feasibility
checks, and a structured-diagnostics layer with stable ``SCRnnn`` codes
and deterministic JSON output.

Typical use::

    from repro.analysis import analyze_source

    report = analyze_source(source, label="myscript")
    for line in report.lines():
        print(line)

The analyzer is validated *differentially* against the deterministic
engine: every guaranteed-deadlock finding on the test fixtures is asserted
to actually block under :mod:`repro.runtime`, and every shipped figure
must analyze error-free (see ``tests/analysis/test_differential.py`` and
DESIGN.md §11).
"""

from .analyzer import (analyze_corpus, analyze_program, analyze_source,
                       figure_corpus, legacy_lint_warnings)
from .cfg import CFG, CFGNode, Prefix, PrefixOp, build_cfg, guaranteed_prefix
from .deadlock import analyze_deadlocks, collect_prefixes
from .diagnostics import (CATALOG, Finding, Report, Severity,
                          counts_by_code, dump_report_json,
                          report_document, summary_lines)
from .graph import (CommSite, Instance, all_instances, collect_sites,
                    instance_label, role_instances, static_eval,
                    terminated_partners)
from .metrics_bridge import record_analysis

__all__ = [
    "CATALOG",
    "CFG",
    "CFGNode",
    "CommSite",
    "Finding",
    "Instance",
    "Prefix",
    "PrefixOp",
    "Report",
    "Severity",
    "all_instances",
    "analyze_corpus",
    "analyze_deadlocks",
    "analyze_program",
    "analyze_source",
    "build_cfg",
    "collect_prefixes",
    "collect_sites",
    "counts_by_code",
    "dump_report_json",
    "figure_corpus",
    "guaranteed_prefix",
    "instance_label",
    "legacy_lint_warnings",
    "record_analysis",
    "report_document",
    "role_instances",
    "static_eval",
    "summary_lines",
    "terminated_partners",
]
