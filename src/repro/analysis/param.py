"""Parameterized model checking over abstract and concrete systems.

:func:`explore_system` exhaustively walks the synchronous state space of a
:class:`~repro.analysis.abstraction.System` — breadth-first, with
canonical state encoding, frontier dedup, and a deterministic transition
order, so repeated runs visit identical states in identical order.  The
exploration records

* **deadlocks**: reachable non-terminal configurations with no outgoing
  transition;
* **livelocks**: reachable configurations from which no terminal
  configuration is reachable at all (a liveness violation under *any*
  fair schedule — computed by backward reachability from the terminal
  set);
* the state/frontier counters surfaced through ``repro stats analysis``.

:func:`run_parameterized` is the orchestration behind ``repro analyze
--parameterized`` / ``repro verify``: classify the script
(:func:`~repro.analysis.abstraction.detect_model`), sweep the small
concrete sizes exactly, run the counter abstraction (symmetric regime) or
the cutoff sweep (ring regime), and concretize every abstract
counterexample before reporting SCR010/SCR011 — anything unconfirmed or
out-of-fragment degrades honestly to SCR012.

The engine semantics mirrored here (checked against
``repro.core.context``): in a closed full cast every role is *filled*, so
a communication with a member whose body already finished blocks forever
— it does **not** yield UNFILLED.  UNFILLED arises only for out-of-bounds
family indices (absent roles), and ``r.terminated`` is true exactly when
``r``'s body finished or ``r`` is absent.
"""

from __future__ import annotations

import dataclasses

from ..lang import ast_nodes as ast
from ..lang.analysis import ProgramInfo
from .abstraction import (TOP, UNFILLED, Code, CounterFamily, IAssign,
                          IBranch, IDoHead, IHalt, IJump, IRecv, ISend,
                          ISyncEach, Member, ParamModel, System,
                          Unsupported, build_abstract_system,
                          build_concrete_system, detect_model)

#: Counter value meaning "at least two occupants" (the cutoff domain is
#: {0, 1, OMEGA}; decrementing OMEGA nondeterministically yields 1 or
#: OMEGA, which is what makes one abstract run cover every family size).
OMEGA = 2

#: Default bound on explored states before the run reports inconclusive.
DEFAULT_MAX_STATES = 200_000


# ---------------------------------------------------------------------------
# Configurations
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True, slots=True)
class Config:
    """One global configuration: member control points and environments
    plus, per abstracted family, the counter valuation over locations."""

    pcs: tuple[int, ...]
    envs: tuple[dict, ...]
    counters: tuple[tuple[str, tuple[tuple[int, int], ...]], ...]


def _canon(value):
    """A hashable, deterministic encoding of one abstract value."""
    if isinstance(value, dict):
        return ("#arr",) + tuple(
            (key, _canon(item)) for key, item in sorted(value.items()))
    if isinstance(value, tuple):
        return ("#tup",) + tuple(_canon(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return ("#set",) + tuple(sorted(repr(_canon(item))
                                        for item in value))
    return value


def _encode_env(env: dict) -> tuple:
    return tuple(sorted(((name, _canon(value))
                         for name, value in env.items()),
                        key=lambda item: item[0]))


def encode(config: Config) -> tuple:
    return (config.pcs,
            tuple(_encode_env(env) for env in config.envs),
            config.counters)


def _has_terminated(expr) -> bool:
    if isinstance(expr, ast.Terminated):
        return True
    if isinstance(expr, ast.Unary):
        return _has_terminated(expr.operand)
    if isinstance(expr, ast.Binary):
        return _has_terminated(expr.left) or _has_terminated(expr.right)
    if isinstance(expr, ast.Index):
        return _has_terminated(expr.base) or _has_terminated(expr.index)
    if isinstance(expr, (ast.SetLit, ast.Call)):
        parts = expr.elements if isinstance(expr, ast.SetLit) else expr.args
        return any(_has_terminated(part) for part in parts)
    return False


@dataclasses.dataclass(slots=True)
class _Endpoint:
    """A communication offer: who, which direction, with whom, and where
    control continues once the rendezvous commits."""

    owner: tuple               # ("m", member index) | ("c", family, loc)
    kind: str                  # "send" | "recv"
    spec: tuple                # resolved partner spec
    env: dict                  # evaluation env (arm binding included)
    value: object              # send value expression (sends)
    target: object             # receive target designator (receives)
    next_pc: int               # pc/loc on commit
    binding: dict              # replicator binding to install on commit


class _Explorer:
    def __init__(self, system: System, max_states: int):
        self.system = system
        self.ev = system.evaluator
        self.members = system.members
        self.codes = [system.codes[member.role] for member in system.members]
        self.max_states = max_states
        self.counter_order = sorted(system.counters)
        self._halt_pcs = {role: len(code.instrs) - 1
                          for role, code in system.codes.items()}

    # -- initial configuration ---------------------------------------------

    def initial(self) -> Config:
        pcs: list[int] = []
        envs: list[dict] = []
        for position, member in enumerate(self.members):
            pc, env = self._advance(self.codes[position], 0,
                                    dict(member.bindings))
            pcs.append(pc)
            envs.append(env)
        counters = tuple(
            (family, ((0, OMEGA),)) for family in self.counter_order)
        return Config(pcs=tuple(pcs), envs=tuple(envs), counters=counters)

    # -- local execution ----------------------------------------------------

    def _advance(self, code: Code, pc: int, env: dict) -> tuple[int, dict]:
        """Run terminated-free internal instructions to the next rest
        point.  Local-deterministic steps commute with every other
        process, so collapsing them loses no interleavings; anything
        reading ``r.terminated`` is non-local and stays a transition."""
        while True:
            instr = code.instrs[pc]
            if isinstance(instr, IJump):
                pc = instr.to
            elif isinstance(instr, IAssign) \
                    and not _has_terminated(instr.value) \
                    and not _has_terminated(instr.target):
                env = dict(env)
                self._assign(instr.target, self.ev.eval(instr.value, env),
                             env)
                pc += 1
            elif isinstance(instr, IBranch) \
                    and not _has_terminated(instr.cond):
                cond = self.ev.eval(instr.cond, env)
                if cond is True:
                    pc += 1
                elif cond is False:
                    pc = instr.orelse
                else:
                    return pc, env
            else:
                return pc, env

    def _assign(self, target, value, env: dict) -> None:
        if isinstance(target, ast.Name):
            current = env.get(target.ident)
            if isinstance(current, dict) and not isinstance(value, dict):
                env[target.ident] = {key: value for key in current}
            else:
                env[target.ident] = value
            return
        if isinstance(target, ast.Index) \
                and isinstance(target.base, ast.Name):
            base = env.get(target.base.ident)
            index = self.ev.eval(target.index, env)
            if isinstance(base, dict) and isinstance(index, int) \
                    and not isinstance(index, bool) and index in base:
                updated = dict(base)
                updated[index] = value
                env[target.base.ident] = updated
            else:
                env[target.base.ident] = TOP
            return

    # -- status queries ------------------------------------------------------

    def _member_halted(self, config: Config, position: int) -> bool:
        return isinstance(self.codes[position].instrs[config.pcs[position]],
                          IHalt)

    def _counter_valuation(self, config: Config, family: str
                           ) -> dict[int, int]:
        for name, locs in config.counters:
            if name == family:
                return dict(locs)
        return {}

    def _class_halted(self, config: Config, role: str) -> bool:
        """Is every process of ``role`` (tracked and counted) finished?"""
        for position, member in enumerate(self.members):
            if member.role == role and not self._member_halted(config,
                                                               position):
                return False
        if role in self.system.counters:
            halt = self._halt_pcs[role]
            for loc, count in self._counter_valuation(config, role).items():
                if count > 0 and loc != halt:
                    return False
        return True

    def _terminated_resolver(self, config: Config, member: Member):
        index_of = {(m.role, m.key): i
                    for i, m in enumerate(self.members)}

        def resolver(ref: ast.RoleRef, env: dict):
            spec = self.system.resolve_ref(ref, env, member)
            if spec[0] == "self":
                return False
            if spec[0] == "absent":
                return True        # absent roles report terminated = true
            if spec[0] == "member":
                position = index_of.get((spec[1], spec[2]))
                if position is None:
                    return TOP
                return self._member_halted(config, position)
            return True if self._class_halted(config, spec[1]) else \
                (False if not self._any_halted(config, spec[1]) else TOP)

        return resolver

    def _any_halted(self, config: Config, role: str) -> bool:
        for position, member in enumerate(self.members):
            if member.role == role and self._member_halted(config, position):
                return True
        if role in self.system.counters:
            halt = self._halt_pcs[role]
            valuation = self._counter_valuation(config, role)
            if valuation.get(halt, 0) > 0:
                return True
        return False

    def is_terminal(self, config: Config) -> bool:
        for position in range(len(self.members)):
            if not self._member_halted(config, position):
                return False
        for family, locs in config.counters:
            halt = self._halt_pcs[family]
            for loc, count in locs:
                if count > 0 and loc != halt:
                    return False
        return True

    # -- successor construction ---------------------------------------------

    def _state(self, config: Config):
        return (list(config.pcs), [dict(env) for env in config.envs],
                {family: dict(locs) for family, locs in config.counters})

    def _pack(self, pcs, envs, counters) -> Config:
        for position in range(len(pcs)):
            pcs[position], envs[position] = self._advance(
                self.codes[position], pcs[position], envs[position])
        packed = tuple(
            (family, tuple(sorted(
                (loc, count) for loc, count in counters[family].items()
                if count > 0)))
            for family in self.counter_order)
        return Config(pcs=tuple(pcs), envs=tuple(envs), counters=packed)

    def _counter_move(self, counters, family: str, loc: int,
                      next_loc: int) -> list[dict]:
        """All counter valuations after one occupant moves loc->next."""
        base = counters[family]
        variants: list[dict] = []
        count = base.get(loc, 0)
        if count <= 0:
            return []
        if count == 1:
            removed = dict(base)
            removed[loc] = 0
            variants.append(removed)
        else:                      # OMEGA: one leaves, 1 or >=2 remain
            one_left = dict(base)
            one_left[loc] = 1
            variants.append(one_left)
            variants.append(dict(base))
        for variant in variants:
            current = variant.get(next_loc, 0)
            variant[next_loc] = 1 if current == 0 else OMEGA
        return variants

    def successors(self, config: Config) -> list[Config]:
        succs: list[Config] = []
        endpoints: list[_Endpoint] = []

        for position, member in enumerate(self.members):
            self._member_successors(config, position, member, succs,
                                    endpoints)
        self._counter_successors(config, succs, endpoints)
        self._rendezvous(config, endpoints, succs)
        return succs

    def _emit(self, succs, config, *, member=None, pc=None, env=None,
              counters_update=None):
        pcs, envs, counters = self._state(config)
        if member is not None:
            pcs[member] = pc
            if env is not None:
                envs[member] = env
        if counters_update is not None:
            family, valuation = counters_update
            counters[family] = valuation
        succs.append(self._pack(pcs, envs, counters))

    def _member_successors(self, config, position, member, succs,
                           endpoints) -> None:
        code = self.codes[position]
        pc = config.pcs[position]
        env = config.envs[position]
        instr = code.instrs[pc]
        terminated = self._terminated_resolver(config, member)
        if isinstance(instr, IHalt):
            return
        if isinstance(instr, IBranch):
            cond = self.ev.eval(instr.cond, env, terminated)
            if cond is not False:
                self._emit(succs, config, member=position, pc=pc + 1)
            if cond is not True:
                self._emit(succs, config, member=position, pc=instr.orelse)
            return
        if isinstance(instr, IAssign):
            # Rest point only for terminated-reading assignments.
            updated = dict(env)
            self._assign(instr.target,
                         self.ev.eval(instr.value, env, terminated), updated)
            self._emit(succs, config, member=position, pc=pc + 1,
                       env=updated)
            return
        if isinstance(instr, (ISend, IRecv)):
            ref = instr.ref
            spec = self.system.resolve_ref(ref, env, member)
            if spec[0] == "absent":
                if isinstance(instr, IRecv):
                    updated = dict(env)
                    self._assign(instr.target, UNFILLED, updated)
                    self._emit(succs, config, member=position, pc=pc + 1,
                               env=updated)
                else:
                    self._emit(succs, config, member=position, pc=pc + 1)
                return
            if spec[0] == "self":
                return             # a self-rendezvous can never commit
            endpoints.append(_Endpoint(
                owner=("m", position),
                kind="send" if isinstance(instr, ISend) else "recv",
                spec=spec, env=env,
                value=instr.value if isinstance(instr, ISend) else None,
                target=instr.target if isinstance(instr, IRecv) else None,
                next_pc=pc + 1, binding={}))
            return
        if isinstance(instr, IDoHead):
            self._dohead(config, position, member, instr, succs, endpoints)
            return
        if isinstance(instr, ISyncEach):
            self._synceach(config, position, member, pc, instr, succs)
            return

    def _dohead(self, config, position, member, instr, succs,
                endpoints) -> None:
        env = config.envs[position]
        terminated = self._terminated_resolver(config, member)
        exit_possible = True
        for arm in instr.arms:
            arm_env = dict(env)
            arm_env.update(arm.binding)
            cond = True if arm.cond is None else \
                self.ev.eval(arm.cond, arm_env, terminated)
            if cond is False:
                continue
            if arm.comm is None:
                # A pure arm that may be enabled: the loop takes it.
                self._emit(succs, config, member=position, pc=arm.body,
                           env=arm_env)
                if cond is True:
                    exit_possible = False
                continue
            ref = arm.comm.target if isinstance(arm.comm, ast.SendStmt) \
                else arm.comm.source
            spec = self.system.resolve_ref(ref, arm_env, member)
            if spec[0] == "absent":
                continue           # dropped branch: counts toward exit
            if cond is True:
                exit_possible = False
            if spec[0] == "self":
                continue           # live branch that can never fire
            endpoints.append(_Endpoint(
                owner=("m", position),
                kind="send" if isinstance(arm.comm, ast.SendStmt)
                else "recv",
                spec=spec, env=arm_env,
                value=arm.comm.value
                if isinstance(arm.comm, ast.SendStmt) else None,
                target=arm.comm.target
                if isinstance(arm.comm, ast.ReceiveStmt) else None,
                next_pc=arm.body, binding=dict(arm.binding)))
        if exit_possible:
            self._emit(succs, config, member=position, pc=instr.exit)

    def _synceach(self, config, position, member, pc, instr, succs) -> None:
        sync = self.system.syncs[(member.role, pc)]
        family_code = self.system.codes[sync.family]
        site = family_code.instrs[sync.pc]
        counter = self.system.counters[sync.family]
        # Individual rendezvous with each tracked family member at the
        # site, then with counted occupants parked there.
        for other_pos, other in enumerate(self.members):
            if other.role != sync.family:
                continue
            if config.pcs[other_pos] != sync.pc:
                continue
            pcs, envs, counters = self._state(config)
            if instr.kind == "recv":
                value = self.ev.eval(site.value, envs[other_pos])
                self._assign(instr.comm.target, value, envs[position])
            else:
                value = self.ev.eval(instr.comm.value, envs[position])
                self._assign(site.target, value, envs[other_pos])
            pcs[other_pos] = sync.pc + 1
            succs.append(self._pack(pcs, envs, counters))
        valuation = self._counter_valuation(config, sync.family)
        if valuation.get(sync.pc, 0) > 0:
            base_counters = {family: dict(locs)
                             for family, locs in config.counters}
            for variant in self._counter_move(base_counters, sync.family,
                                              sync.pc, sync.pc + 1):
                pcs, envs, counters = self._state(config)
                if instr.kind == "recv":
                    value = self.ev.eval(site.value, counter.env)
                    self._assign(instr.comm.target, value, envs[position])
                counters[sync.family] = variant
                succs.append(self._pack(pcs, envs, counters))
        # Exit: every family member is past its rendezvous site.
        for other_pos, other in enumerate(self.members):
            if other.role == sync.family \
                    and config.pcs[other_pos] in sync.reaches:
                return
        for loc, count in valuation.items():
            if count > 0 and loc in sync.reaches:
                return
        self._emit(succs, config, member=position, pc=pc + 1)

    def _counter_successors(self, config, succs, endpoints) -> None:
        for family in self.counter_order:
            counter = self.system.counters[family]
            code = self.system.codes[family]
            valuation = self._counter_valuation(config, family)
            for loc in sorted(valuation):
                if valuation[loc] <= 0:
                    continue
                instr = code.instrs[loc]
                if isinstance(instr, IHalt):
                    continue
                if isinstance(instr, (IJump, IAssign, IBranch)):
                    targets: list[int] = []
                    if isinstance(instr, IJump):
                        targets = [instr.to]
                    elif isinstance(instr, IAssign):
                        targets = [loc + 1]
                    else:
                        cond = self.ev.eval(instr.cond, counter.env,
                                            self._counter_terminated(
                                                config, family))
                        if cond is not False:
                            targets.append(loc + 1)
                        if cond is not True:
                            targets.append(instr.orelse)
                    base = {fam: dict(locs)
                            for fam, locs in config.counters}
                    for target in targets:
                        for variant in self._counter_move(
                                base, family, loc, target):
                            self._emit(succs, config,
                                       counters_update=(family, variant))
                    continue
                if isinstance(instr, (ISend, IRecv)):
                    spec = self._counter_resolve(instr.ref, counter, family)
                    if spec[0] == "absent":
                        base = {fam: dict(locs)
                                for fam, locs in config.counters}
                        for variant in self._counter_move(
                                base, family, loc, loc + 1):
                            self._emit(succs, config,
                                       counters_update=(family, variant))
                        continue
                    if spec[0] == "self":
                        continue
                    endpoints.append(_Endpoint(
                        owner=("c", family, loc),
                        kind="send" if isinstance(instr, ISend) else "recv",
                        spec=spec, env=counter.env,
                        value=instr.value if isinstance(instr, ISend)
                        else None,
                        target=None, next_pc=loc + 1, binding={}))
                    continue
                if isinstance(instr, IDoHead):
                    self._counter_dohead(config, family, counter, loc,
                                         instr, succs, endpoints)
                    continue

    def _counter_terminated(self, config, family: str):
        counter = self.system.counters[family]
        proxy = Member(role=family, key="interior", label=counter.label,
                       bindings=counter.env)
        return self._terminated_resolver(config, proxy)

    def _counter_resolve(self, ref, counter: CounterFamily, family: str):
        proxy = Member(role=family, key="interior", label=counter.label,
                       bindings=counter.env)
        return self.system.resolve_ref(ref, counter.env, proxy)

    def _counter_dohead(self, config, family, counter, loc, instr, succs,
                        endpoints) -> None:
        terminated = self._counter_terminated(config, family)
        exit_possible = True
        for arm in instr.arms:
            arm_env = dict(counter.env)
            arm_env.update(arm.binding)
            cond = True if arm.cond is None else \
                self.ev.eval(arm.cond, arm_env, terminated)
            if cond is False:
                continue
            if arm.comm is None:
                base = {fam: dict(locs) for fam, locs in config.counters}
                for variant in self._counter_move(base, family, loc,
                                                  arm.body):
                    self._emit(succs, config,
                               counters_update=(family, variant))
                if cond is True:
                    exit_possible = False
                continue
            ref = arm.comm.target if isinstance(arm.comm, ast.SendStmt) \
                else arm.comm.source
            spec = self._counter_resolve(ref, counter, family)
            if spec[0] == "absent":
                continue
            if cond is True:
                exit_possible = False
            if spec[0] == "self":
                continue
            endpoints.append(_Endpoint(
                owner=("c", family, loc),
                kind="send" if isinstance(arm.comm, ast.SendStmt)
                else "recv",
                spec=spec, env=arm_env,
                value=arm.comm.value
                if isinstance(arm.comm, ast.SendStmt) else None,
                target=None, next_pc=arm.body, binding={}))
        if exit_possible:
            base = {fam: dict(locs) for fam, locs in config.counters}
            for variant in self._counter_move(base, family, loc,
                                              instr.exit):
                self._emit(succs, config, counters_update=(family, variant))

    # -- rendezvous matching -------------------------------------------------

    def _spec_allows(self, spec: tuple, owner: tuple) -> bool:
        if spec[0] == "any":
            if owner[0] == "m":
                return self.members[owner[1]].role == spec[1]
            return owner[1] == spec[1]
        if spec[0] == "member":
            if owner[0] != "m":
                return False
            member = self.members[owner[1]]
            return member.role == spec[1] and member.key == spec[2]
        return False

    def _rendezvous(self, config, endpoints, succs) -> None:
        senders = [e for e in endpoints if e.kind == "send"]
        receivers = [e for e in endpoints if e.kind == "recv"]
        for sender in senders:
            for receiver in receivers:
                if sender.owner == receiver.owner:
                    continue
                if not self._spec_allows(sender.spec, receiver.owner):
                    continue
                if not self._spec_allows(receiver.spec, sender.owner):
                    continue
                self._commit(config, sender, receiver, succs)

    def _commit(self, config, sender: _Endpoint, receiver: _Endpoint,
                succs) -> None:
        value = self.ev.eval(sender.value, sender.env)
        states = [self._state(config)]
        for endpoint in (sender, receiver):
            states = self._apply(states, config, endpoint,
                                 value if endpoint is receiver else None)
        for pcs, envs, counters in states:
            succs.append(self._pack(pcs, envs, counters))

    def _apply(self, states, config, endpoint: _Endpoint, value):
        """Apply one endpoint's commit effect to every pending variant."""
        out = []
        for pcs, envs, counters in states:
            if endpoint.owner[0] == "m":
                position = endpoint.owner[1]
                env = dict(envs[position])
                env.update(endpoint.binding)
                if endpoint.target is not None:
                    self._assign(endpoint.target, value, env)
                new_envs = list(envs)
                new_envs[position] = env
                new_pcs = list(pcs)
                new_pcs[position] = endpoint.next_pc
                out.append((new_pcs, new_envs, counters))
            else:
                _tag, family, loc = endpoint.owner
                for variant in self._counter_move(
                        {family: dict(counters[family])}, family, loc,
                        endpoint.next_pc):
                    new_counters = dict(counters)
                    new_counters[family] = variant
                    out.append((list(pcs), list(envs), new_counters))
        return out


# ---------------------------------------------------------------------------
# Exploration
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class Exploration:
    """The result of one exhaustive walk of a system's state space."""

    system: System
    states: int
    frontier_peak: int
    capped: bool
    terminal_count: int
    deadlocks: list[Config]        # discovery (BFS) order
    livelocks: list[Config]

    @property
    def guaranteed(self) -> bool:
        """True when no schedule terminates: the deadlock is certain."""
        return self.terminal_count == 0 and bool(self.deadlocks)

    def blocked(self, config: Config) -> list[tuple[str, int]]:
        """(label, line) for every non-halted process of ``config``."""
        rows: list[tuple[str, int]] = []
        for position, member in enumerate(self.system.members):
            code = self.system.codes[member.role]
            instr = code.instrs[config.pcs[position]]
            if isinstance(instr, IHalt):
                continue
            rows.append((member.label, getattr(instr, "line", 0)))
        for family, locs in config.counters:
            code = self.system.codes[family]
            counter = self.system.counters[family]
            for loc, count in locs:
                instr = code.instrs[loc]
                if count > 0 and not isinstance(instr, IHalt):
                    rows.append((counter.label, getattr(instr, "line", 0)))
        return sorted(set(rows))


def explore_system(system: System,
                   max_states: int = DEFAULT_MAX_STATES) -> Exploration:
    """Exhaustively explore ``system`` breadth-first."""
    explorer = _Explorer(system, max_states)
    initial = explorer.initial()
    visited: dict[tuple, Config] = {encode(initial): initial}
    order: list[tuple] = [encode(initial)]
    edges: dict[tuple, tuple] = {}
    frontier = [encode(initial)]
    frontier_peak = 1
    capped = False
    head = 0
    while head < len(frontier):
        if len(visited) > max_states:
            capped = True
            break
        key = frontier[head]
        head += 1
        config = visited[key]
        succ_keys: list[tuple] = []
        for successor in explorer.successors(config):
            skey = encode(successor)
            succ_keys.append(skey)
            if skey not in visited:
                visited[skey] = successor
                order.append(skey)
                frontier.append(skey)
        edges[key] = tuple(succ_keys)
        frontier_peak = max(frontier_peak, len(frontier) - head)
    deadlocks: list[Config] = []
    terminals: list[tuple] = []
    for key in order:
        if key not in edges:
            continue               # beyond the cap: unclassified
        if edges[key]:
            continue
        config = visited[key]
        if explorer.is_terminal(config):
            terminals.append(key)
        else:
            deadlocks.append(config)
    livelocks: list[Config] = []
    if not capped:
        predecessors: dict[tuple, list[tuple]] = {}
        for key, succ_keys in edges.items():
            for skey in succ_keys:
                predecessors.setdefault(skey, []).append(key)
        can_finish = set(terminals)
        stack = list(terminals)
        while stack:
            key = stack.pop()
            for pred in predecessors.get(key, ()):
                if pred not in can_finish:
                    can_finish.add(pred)
                    stack.append(pred)
        deadlock_keys = {encode(config) for config in deadlocks}
        for key in order:
            if key in can_finish or key in deadlock_keys:
                continue
            livelocks.append(visited[key])
    return Exploration(system=system, states=len(visited),
                       frontier_peak=frontier_peak, capped=capped,
                       terminal_count=len(terminals), deadlocks=deadlocks,
                       livelocks=livelocks)

# ---------------------------------------------------------------------------
# Orchestration: the ``--parameterized`` pass
# ---------------------------------------------------------------------------

#: Sizes probed above the abstraction floor when searching for a concrete
#: deadlock witness (the abstract counterexample covers "some n >= floor";
#: real bugs almost always bite within a few members of the floor).
WITNESS_SPAN = 4


def _sweep_start(model: ParamModel) -> int:
    """Smallest family size the verification claims cover.

    Sizes below every family's lower bound are semantically invalid
    (empty index ranges), and n = 1 degenerates most protocols (a ring of
    one node talks to itself), so coverage claims start at 2.
    """
    low = max((shape.low for shape in model.families.values()), default=1)
    return max(2, low)


def _confirm_deadlock(program, overrides, stats):
    from .witness import replay_deadlock
    stats["witnesses_replayed"] += 1
    return replay_deadlock(program, overrides)


def _emit_deadlock(report, stats, witness, exploration, config) -> None:
    blocked = exploration.blocked(config)
    label, line = blocked[0] if blocked else (report.script, 1)
    parts = ", ".join(lbl for lbl, _ in blocked) or "every process"
    size = ", ".join(f"{name} = {value}"
                     for name, value in sorted(witness.overrides.items())) \
        or "the declared size"
    report.emit(
        "SCR010", line, label,
        f"guaranteed family deadlock: with {size} the full cast blocks "
        f"({parts} cannot progress); confirmed by concrete replay under "
        f"the engine (seed {witness.seed})")
    stats["verdict"] = "unsafe"


def _emit_livelock(report, stats, overrides, exploration, config) -> None:
    blocked = exploration.blocked(config)
    label, line = blocked[0] if blocked else (report.script, 1)
    size = ", ".join(f"{name} = {value}"
                     for name, value in sorted(overrides.items())) \
        or "the declared size"
    report.emit(
        "SCR011", line, label,
        f"critical-set liveness violation: with {size} a reachable "
        f"configuration can never complete the protocol (no terminal "
        f"configuration is reachable from it); confirmed by exhaustive "
        f"concrete exploration")
    stats["verdict"] = "unsafe"


def _emit_inconclusive(report, stats, why: str) -> None:
    report.emit("SCR012", 1, report.script,
                f"parameterized verification is inconclusive: {why}")
    if stats["verdict"] == "safe":
        stats["verdict"] = "inconclusive"


def _record(stats, exploration) -> None:
    stats["states"] += exploration.states
    stats["frontier_peak"] = max(stats["frontier_peak"],
                                 exploration.frontier_peak)


def _concrete_pass(program, overrides, report, stats, max_states) -> bool:
    """Explore one concrete size exactly; True when a violation was found."""
    try:
        system = build_concrete_system(program, overrides)
    except Unsupported as why:
        _emit_inconclusive(report, stats, str(why))
        return False
    exploration = explore_system(system, max_states=max_states)
    _record(stats, exploration)
    if exploration.capped:
        _emit_inconclusive(
            report, stats,
            f"state bound ({max_states}) hit at "
            f"{overrides or 'the declared size'}")
        return False
    if exploration.deadlocks:
        witness = _confirm_deadlock(program, overrides, stats)
        if witness is not None:
            _emit_deadlock(report, stats, witness, exploration,
                           exploration.deadlocks[0])
        else:
            _emit_inconclusive(
                report, stats,
                f"abstract deadlock at {overrides} did not reproduce "
                f"under the engine")
        return True
    if exploration.livelocks:
        _emit_livelock(report, stats, overrides, exploration,
                       exploration.livelocks[0])
        return True
    return False


def run_parameterized(program, info: ProgramInfo, report,
                      max_states: int = DEFAULT_MAX_STATES) -> dict:
    """Run parameterized verification, emitting SCR010/SCR011/SCR012.

    Fills and returns ``report.parameterized`` — a JSON-able summary with
    the verdict ("safe" | "unsafe" | "inconclusive"), the strategy used,
    and the state-space counters surfaced by ``repro stats analysis``.
    """
    from .witness import confirm_livelock, find_deadlock_witness
    stats = {"verdict": "safe", "strategy": "fixed", "covers": None,
             "families": [], "swept": [], "states": 0, "frontier_peak": 0,
             "witnesses_replayed": 0}
    report.parameterized = stats
    try:
        model = detect_model(program, info)
    except Unsupported as why:
        stats["strategy"] = "unsupported"
        _emit_inconclusive(report, stats, str(why))
        return stats

    if model is None:
        # No parametric family: exhaustively verify the declared sizes.
        stats["covers"] = "declared sizes"
        _concrete_pass(program, {}, report, stats, max_states)
        return stats

    stats["strategy"] = model.strategy
    stats["families"] = [
        {"name": shape.name, "regime": shape.regime, "low": shape.low,
         "boundary_low": shape.bl, "boundary_high": shape.bh}
        for shape in sorted(model.families.values(),
                            key=lambda s: s.name)]
    start = _sweep_start(model)

    if model.strategy == "cutoff":
        # Ring regime: exact exploration of every size up to the cutoff
        # proves all larger sizes (see DESIGN.md §16).
        for n in range(start, model.cutoff + 1):
            stats["swept"].append(n)
            if _concrete_pass(program, {model.param: n}, report, stats,
                              max_states):
                return stats
        stats["covers"] = f"all {model.param} >= {start}"
        return stats

    # Symmetric regime: exact sweep below the abstraction floor, then one
    # abstract run covering every size at or above it.
    for n in range(start, model.floor):
        stats["swept"].append(n)
        if _concrete_pass(program, {model.param: n}, report, stats,
                          max_states):
            return stats
    try:
        system = build_abstract_system(program, info, model)
    except Unsupported as why:
        _emit_inconclusive(report, stats, str(why))
        return stats
    exploration = explore_system(system, max_states=max_states)
    _record(stats, exploration)
    if exploration.capped:
        _emit_inconclusive(
            report, stats,
            f"abstract state bound ({max_states}) hit")
        return stats
    if exploration.deadlocks:
        sizes = range(model.floor, model.floor + WITNESS_SPAN)
        stats["witnesses_replayed"] += len(sizes)
        witness = find_deadlock_witness(program, model.param, sizes)
        if witness is not None:
            _emit_deadlock(report, stats, witness, exploration,
                           exploration.deadlocks[0])
        else:
            _emit_inconclusive(
                report, stats,
                f"abstract deadlock found but no concrete witness in "
                f"{model.param} = {sizes.start}..{sizes.stop - 1}")
        return stats
    if exploration.livelocks:
        confirmed = None
        for n in range(model.floor, model.floor + WITNESS_SPAN):
            stats["witnesses_replayed"] += 1
            if confirm_livelock(program, {model.param: n}, max_states):
                confirmed = n
                break
        if confirmed is not None:
            _emit_livelock(report, stats, {model.param: confirmed},
                           exploration, exploration.livelocks[0])
        else:
            _emit_inconclusive(
                report, stats,
                "abstract liveness violation found but not reproduced "
                "concretely")
        return stats
    stats["covers"] = f"all {model.param} >= {start}"
    return stats
