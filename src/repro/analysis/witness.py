"""Concretizing abstract counterexamples under the real engine.

The abstraction in :mod:`repro.analysis.abstraction` over-approximates:
an abstract deadlock or livelock may be an artifact of counter blur or
TOP-valued data.  Nothing is reported to the user until this module
confirms it concretely —

* :func:`replay_deadlock` reinstantiates the script at a candidate family
  size, spawns the full cast under the real
  :class:`~repro.runtime.scheduler.Scheduler`, and checks that the
  performance raises :class:`~repro.runtime.scheduler.DeadlockError`;
* :func:`find_deadlock_witness` sweeps candidate sizes smallest-first so
  the reported witness is minimal;
* :func:`confirm_livelock` re-explores the *concrete* state space at the
  witness size (never the scheduler — a livelock would simply hang it)
  and checks a terminal configuration really is unreachable.

IN-mode role parameters are filled with the same ``<role.param>`` atom
strings the abstraction computes with, so the replay exercises exactly
the data flow the abstract run reasoned about (and, because the atoms
are fresh by construction, the sentinel-freedom assumption holds).
"""

from __future__ import annotations

import dataclasses

from ..lang import ast_nodes as ast
from ..lang.analysis import analyze
from ..lang.interp import compile_program
from ..runtime.scheduler import DeadlockError, Scheduler
from .abstraction import build_concrete_system, reparameterize
from .param import explore_system

#: Scheduler seeds tried per candidate size.  Seed 0 is the engine
#: default and almost always suffices for *guaranteed* deadlocks (every
#: schedule blocks); the rest cover scheduler-order-sensitive stalls.
REPLAY_SEEDS: tuple[int, ...] = tuple(range(10))

#: Step bound per replay — generous for the small witness sizes swept.
REPLAY_MAX_STEPS = 200_000


@dataclasses.dataclass(frozen=True, slots=True)
class Witness:
    """One confirmed concrete counterexample."""

    overrides: dict                # constant overrides ({param: n})
    seed: int                      # scheduler seed that exhibited it
    blocked: tuple[str, ...]       # blocked process labels (deadlocks)


def _atom_params(role: ast.RoleDeclNode) -> dict[str, str]:
    """IN-parameter fillers matching the abstraction's atoms."""
    return {p.name: f"<{role.name}.{p.name}>"
            for p in role.params if not p.is_var}


def replay_deadlock(program: ast.ScriptProgram, overrides: dict,
                    seeds: tuple[int, ...] = REPLAY_SEEDS,
                    max_steps: int = REPLAY_MAX_STEPS) -> Witness | None:
    """Run the full cast at ``overrides``; a :class:`Witness` on deadlock.

    Tries ``seeds`` in order and returns on the first schedule that
    blocks.  Any outcome other than a deadlock — completion, a step-bound
    trip, an engine error — counts as *not confirmed* for that seed.
    """
    concrete = reparameterize(program, overrides)
    info = analyze(concrete)
    script = compile_program(concrete, info)
    params = {role.name: _atom_params(role) for role in concrete.roles}
    for seed in seeds:
        scheduler = Scheduler(seed=seed, max_steps=max_steps)
        instance = script.instance(scheduler)

        def actor(role_id, kwargs):
            out = yield from instance.enroll(role_id, **kwargs)
            return out

        for role_id in sorted(script.closed_role_ids, key=str):
            if isinstance(role_id, str):
                name, label = role_id, role_id
            else:
                name, label = role_id[0], f"{role_id[0]}[{role_id[1]}]"
            scheduler.spawn(label, actor(role_id, params.get(name, {})))
        try:
            scheduler.run()
        except DeadlockError as blocked:
            labels = tuple(sorted(str(name) for name in blocked.blocked))
            return Witness(overrides=dict(overrides), seed=seed,
                           blocked=labels)
        except Exception:
            continue               # replay failed some other way: no claim
    return None


def find_deadlock_witness(program: ast.ScriptProgram, param: str,
                          sizes: range) -> Witness | None:
    """The smallest family size in ``sizes`` whose full cast deadlocks."""
    for n in sizes:
        witness = replay_deadlock(program, {param: n}, seeds=(0,))
        if witness is not None:
            return witness
    for n in sizes:                # rarer: schedule-dependent blocks
        witness = replay_deadlock(program, {param: n})
        if witness is not None:
            return witness
    return None


def confirm_livelock(program: ast.ScriptProgram, overrides: dict,
                     max_states: int) -> bool:
    """Does the concrete state space at ``overrides`` contain a reachable
    configuration from which no terminal configuration is reachable?

    Uses exhaustive concrete exploration, not the scheduler: a genuine
    livelock never raises, it spins — only reachability analysis can
    certify it.  An inconclusive (capped) exploration confirms nothing.
    """
    try:
        system = build_concrete_system(program, overrides)
    except Exception:
        return False
    exploration = explore_system(system, max_states=max_states)
    if exploration.capped:
        return False
    return bool(exploration.livelocks) or bool(exploration.deadlocks)
