"""Script definitions: the builder for the paper's central construct.

A :class:`ScriptDef` declares a script's roles (singletons, closed families,
open families), their data parameters, its initiation/termination policies,
and its critical role sets.  Role bodies are attached with the
:meth:`ScriptDef.role` / :meth:`ScriptDef.role_family` decorators::

    from repro.core import (Initiation, Mode, Param, ScriptDef, Termination)

    broadcast = ScriptDef("star_broadcast",
                          initiation=Initiation.DELAYED,
                          termination=Termination.DELAYED)

    @broadcast.role("sender", params=[Param("data", Mode.IN)])
    def sender(ctx, data):
        for i in range(1, 6):
            yield from ctx.send(("recipient", i), data)

    @broadcast.role_family("recipient", range(1, 6),
                           params=[Param("data", Mode.OUT)])
    def recipient(ctx, data):
        data.value = yield from ctx.receive("sender")

Scripts are as generic as the host language allows (Section II): a
``ScriptDef`` is an ordinary Python value, so "generic" scripts are plain
functions returning fresh definitions, and multiple concurrent *instances*
of one definition are created with :meth:`ScriptDef.instance`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from ..errors import ScriptDefinitionError
from ..runtime import Scheduler
from .params import Param
from .policies import Initiation, Termination, UnfilledPolicy
from .roles import (RoleBody, RoleDecl, RoleFamily, RoleId, RoleSpec,
                    expand_role_ids, family_member, is_family_member)


class ScriptDef:
    """Declaration of a script: roles, parameters, policies, critical sets."""

    def __init__(self, name: str,
                 initiation: Initiation = Initiation.DELAYED,
                 termination: Termination = Termination.DELAYED,
                 unfilled: UnfilledPolicy = UnfilledPolicy.DISTINGUISHED):
        if not name:
            raise ScriptDefinitionError("script name must be nonempty")
        self.name = name
        self.initiation = initiation
        self.termination = termination
        self.unfilled = unfilled
        self.declarations: dict[str, RoleDecl] = {}
        self._critical_sets: list[frozenset[Any]] = []

    # ------------------------------------------------------------------
    # Role declaration
    # ------------------------------------------------------------------

    def _register(self, decl: RoleDecl) -> None:
        if decl.name in self.declarations:
            raise ScriptDefinitionError(
                f"script {self.name!r}: duplicate role {decl.name!r}")
        self.declarations[decl.name] = decl

    def role(self, name: str, params: Sequence[Param] = ()
             ) -> Callable[[RoleBody], RoleBody]:
        """Decorator declaring a singleton role with body ``fn(ctx, **params)``."""
        def decorator(fn: RoleBody) -> RoleBody:
            self._register(RoleSpec(name=name, body=fn, params=tuple(params)))
            return fn
        return decorator

    def role_family(self, name: str, indices: Iterable[int] | None = None,
                    params: Sequence[Param] = (), min_count: int = 0,
                    max_count: int | None = None
                    ) -> Callable[[RoleBody], RoleBody]:
        """Decorator declaring an indexed role family.

        ``indices`` fixes a closed family; ``indices=None`` declares an
        open-ended family bounded by ``min_count``/``max_count``.
        """
        def decorator(fn: RoleBody) -> RoleBody:
            family_indices = tuple(indices) if indices is not None else None
            self._register(RoleFamily(
                name=name, body=fn, params=tuple(params),
                indices=family_indices, min_count=min_count,
                max_count=max_count))
            return fn
        return decorator

    def add_role(self, name: str, body: RoleBody,
                 params: Sequence[Param] = ()) -> None:
        """Non-decorator form of :meth:`role`."""
        self._register(RoleSpec(name=name, body=body, params=tuple(params)))

    def add_role_family(self, name: str, body: RoleBody,
                        indices: Iterable[int] | None = None,
                        params: Sequence[Param] = (), min_count: int = 0,
                        max_count: int | None = None) -> None:
        """Non-decorator form of :meth:`role_family`."""
        family_indices = tuple(indices) if indices is not None else None
        self._register(RoleFamily(
            name=name, body=body, params=tuple(params),
            indices=family_indices, min_count=min_count,
            max_count=max_count))

    # ------------------------------------------------------------------
    # Critical role sets
    # ------------------------------------------------------------------

    def critical_role_set(self, *items: Any) -> None:
        """Add one alternative critical role set.

        Each item is a singleton role name, a concrete member ``(family,
        index)``, or a family name — a closed family name expands to all of
        its members; an open family name requires ``min_count`` members.
        Multiple calls add alternative sets: a performance may begin when
        *any* one of them is consistently filled.
        """
        expanded: set[Any] = set()
        for item in items:
            decl = self.declarations.get(item) if isinstance(item, str) else None
            if isinstance(decl, RoleFamily):
                if decl.open:
                    expanded.add(decl.name)
                else:
                    expanded.update(decl.role_ids)
            elif isinstance(decl, RoleSpec):
                expanded.add(item)
            elif self._valid_role_id(item):
                expanded.add(item)
            else:
                raise ScriptDefinitionError(
                    f"script {self.name!r}: unknown critical item {item!r}")
        if not expanded:
            raise ScriptDefinitionError("critical role set must be nonempty")
        self._critical_sets.append(frozenset(expanded))

    def _valid_role_id(self, role_id: RoleId) -> bool:
        if isinstance(role_id, str):
            return role_id in self.declarations
        if is_family_member(role_id):
            decl = self.declarations.get(role_id[0])
            return isinstance(decl, RoleFamily) and decl.contains(role_id)
        return False

    @property
    def critical_sets(self) -> list[frozenset[Any]]:
        """The declared critical sets, or the implicit all-roles set.

        "In case no such set is specified, it is taken to mean that the
        entire collection of roles is critical" — for open families that
        means at least ``min_count`` members.
        """
        if self._critical_sets:
            return list(self._critical_sets)
        implicit: set[Any] = set(self.closed_role_ids)
        implicit.update(name for name, decl in self.declarations.items()
                        if isinstance(decl, RoleFamily) and decl.open)
        if not implicit:
            raise ScriptDefinitionError(
                f"script {self.name!r} declares no roles")
        return [frozenset(implicit)]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def closed_role_ids(self) -> frozenset[RoleId]:
        """All statically known role ids (open-family members excluded)."""
        return frozenset(expand_role_ids(self.declarations.values()))

    @property
    def closed_families(self) -> dict[str, tuple[int, ...]]:
        """Closed families: name -> index tuple."""
        return {name: decl.indices
                for name, decl in self.declarations.items()
                if isinstance(decl, RoleFamily) and not decl.open}

    @property
    def open_families(self) -> dict[str, RoleFamily]:
        """Open families by name."""
        return {name: decl for name, decl in self.declarations.items()
                if isinstance(decl, RoleFamily) and decl.open}

    def declaration_for(self, role_id: RoleId) -> RoleDecl:
        """The declaration governing ``role_id`` (or a bare family name)."""
        if isinstance(role_id, str):
            decl = self.declarations.get(role_id)
            if decl is None:
                raise ScriptDefinitionError(
                    f"script {self.name!r}: no role {role_id!r}")
            return decl
        if is_family_member(role_id):
            decl = self.declarations.get(role_id[0])
            if isinstance(decl, RoleFamily) and decl.contains(role_id):
                return decl
        raise ScriptDefinitionError(
            f"script {self.name!r}: no role {role_id!r}")

    # ------------------------------------------------------------------
    # Instantiation
    # ------------------------------------------------------------------

    def instance(self, scheduler: Scheduler, name: str | None = None,
                 **options: Any) -> "ScriptInstance":
        """Create an independent instance of this script on ``scheduler``.

        Multiple instances of one script coexist, "in the same sense that
        Ada allows for multiple instances of a generic object"; concurrent
        independent broadcasts use separate instances.
        """
        from .instance import ScriptInstance
        return ScriptInstance(self, scheduler, name=name, **options)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ScriptDef {self.name!r} roles={list(self.declarations)} "
                f"{self.initiation.value}/{self.termination.value}>")
