"""Enrollment requests and partner-naming constraints.

The paper distinguishes *partners-named* enrollment (the enrolling process
names which processes must fill (some of) the other roles), *partners-
unnamed* enrollment (no constraints), and mixtures with partial naming.  It
also allows disjunctive naming ("a given role should be fulfilled by either
process A or process B").

An :class:`EnrollmentRequest` therefore carries, besides the target role and
actual parameters, a mapping from partner role ids to *sets* of acceptable
process names.  Joint enrollment requires all co-enrolled requests to agree
on the binding of processes to roles; the search for such an agreement lives
in :mod:`repro.core.matching`.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Hashable, Mapping

from ..errors import EnrollmentError
from .roles import RoleId

_request_counter = itertools.count()

#: Normalised partner constraints: role id -> set of acceptable processes.
PartnerConstraints = dict[RoleId, frozenset[Hashable]]


def normalize_partners(partners: Mapping[RoleId, Any] | None
                       ) -> PartnerConstraints:
    """Normalise a user-supplied ``partners`` mapping.

    Values may be a single process name, or an iterable of names (the
    disjunctive "A or B" form).  Strings and tuples count as single names —
    tuples are process-array addresses like ``("recipient", 3)`` — so only
    lists, sets and frozensets denote disjunction.
    """
    if not partners:
        return {}
    normalised: PartnerConstraints = {}
    for role_id, spec in partners.items():
        if isinstance(spec, (list, set, frozenset)):
            names = frozenset(spec)
            if not names:
                raise EnrollmentError(
                    f"empty partner set for role {role_id!r}")
        else:
            names = frozenset([spec])
        normalised[role_id] = names
    return normalised


class RequestState:
    """Lifecycle of an enrollment request."""

    PENDING = "pending"      # pooled, waiting to join a performance
    ASSIGNED = "assigned"    # bound to a role of a performance
    WITHDRAWN = "withdrawn"  # cancelled before assignment


@dataclasses.dataclass(eq=False)
class EnrollmentRequest:
    """One attempt by a process to enroll in a role of a script instance.

    ``role_id`` may name a singleton role, a family member, or — for open
    families — a bare family name, meaning "any fresh index" (the
    coordinator then picks the next free index).
    """

    process: Hashable
    role_id: RoleId
    actuals: dict[str, Any]
    partners: PartnerConstraints
    seq: int = dataclasses.field(default_factory=lambda: next(_request_counter))
    state: str = RequestState.PENDING
    # Filled in at assignment:
    performance: Any = None
    assigned_role: RoleId | None = None

    @property
    def assigned(self) -> bool:
        """True once this request is bound to a role of a performance."""
        return self.state == RequestState.ASSIGNED

    def accepts_binding(self, role_id: RoleId, process: Hashable) -> bool:
        """Does this request allow ``process`` to fill ``role_id``?"""
        allowed = self.partners.get(role_id)
        return allowed is None or process in allowed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<EnrollmentRequest #{self.seq} {self.process!r} as "
                f"{self.role_id!r} [{self.state}]>")
