"""Supervision: what a script instance does when a participant crashes.

The paper's graceful-degradation contract — a performance may begin with
only a *critical* role set filled, and communication with an absent role
yields a distinguished value while ``r.terminated`` reports true — extends
naturally to mid-performance crashes:

* **Non-critical crash.**  If the surviving participants still cover a
  critical role set, the crashed role is demoted to *absent*: it leaves the
  participant set, partners that communicate with it get the unfilled-role
  treatment (:data:`~repro.core.policies.UNFILLED` or
  :class:`~repro.errors.UnfilledRoleError`), and ``r.terminated`` is true.
  Partners already blocked in a rendezvous whose only possible partners
  died are unwound with :class:`~repro.errors.CrashedPartnerSignal`, which
  :class:`~repro.core.RoleContext` translates into the same policy.

* **Critical crash.**  If no critical role set remains covered, the
  performance cannot meaningfully complete: it is *aborted*.  Every
  surviving participant whose role body has not finished is released with
  a structured :class:`~repro.errors.PerformanceAborted` thrown at its
  current yield point, its role alias dropped and pending offers
  withdrawn, so no residue remains on the board, in the alias registry, or
  in the waiter set.  Participants whose bodies already finished complete
  normally (the aborted performance counts as ended for delayed
  termination).

* **Crash before enrollment.**  Pooled requests of the dead process are
  removed so they can never be drafted into a future performance.

A crash *before the performance seals* simply vacates the role — the
participant set is not final yet, so another process may still fill it;
no abort decision is taken.

A :class:`Supervisor` subscribes to the scheduler's kill notifications;
create one per instance with :meth:`ScriptInstance.supervise
<repro.core.instance.ScriptInstance.supervise>`.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable, TYPE_CHECKING

from ..errors import CrashedPartnerSignal, PerformanceAborted
from ..runtime import EventKind
from ..runtime.process import Process
from .performance import Performance
from .roles import RoleId, family_of

if TYPE_CHECKING:  # pragma: no cover
    from .instance import ScriptInstance

#: Test-only planted regression.  When flipped (monkeypatched by
#: ``tests/faults/test_explore.py``), :meth:`Supervisor._abort` skips
#: marking the aborted performance as ended — residue the kernel cannot
#: self-heal (survivors' aliases are reclaimed when their processes
#: finish, but a performance's ``ended`` bit is the supervisor's job
#: alone), so the fault-space explorer (:mod:`repro.faults.explore`)
#: must find it and shrink it to a minimal schedule.  Never set outside
#: tests.
SKIP_ABORT_PERFORMANCE_END = False


class Supervisor:
    """Applies crash policies to one script instance.

    ``critical`` optionally overrides the inference of which roles are
    critical: a collection of role ids and/or family names; a crash of any
    listed role (or member of a listed family) aborts the performance, any
    other crash falls back to absence.  Without it, criticality is
    inferred from the script's critical role sets: a crash aborts exactly
    when the surviving participants no longer cover any critical set.

    ``on_abort`` is called with the aborted :class:`Performance` before
    survivors are released (harnesses use it to flip shutdown flags so
    pooled survivors withdraw instead of waiting for a performance that
    can never form).
    """

    def __init__(self, instance: "ScriptInstance",
                 critical: Iterable[Any] | None = None,
                 on_abort: Callable[[Performance], None] | None = None):
        self.instance = instance
        self.critical = frozenset(critical) if critical is not None else None
        self.on_abort = on_abort
        self.crashes = 0
        self.aborts = 0
        instance.scheduler.on_kill(self._process_crashed)

    # ------------------------------------------------------------------
    # Kill notification
    # ------------------------------------------------------------------

    def _process_crashed(self, process: Process) -> None:
        instance = self.instance
        name = process.name
        # Crash before enrollment: drop the dead process's pooled requests.
        for request in [r for r in instance.pool if r.process == name]:
            instance._withdraw(request)
        performance = instance.current
        if performance is None or performance.ended:
            return
        crashed_roles = [
            role for role, request in performance.filled.items()
            if request.process == name and role not in performance.done]
        if not crashed_roles:
            return
        self.crashes += 1
        for role in crashed_roles:
            performance.filled.pop(role)
            performance.crashed.add(role)
            instance._emit(EventKind.ROLE_CRASH, name, role=role,
                           performance=performance.id,
                           sealed=performance.sealed)
        if not performance.sealed:
            # Participant set not final: the vacated role may be refilled
            # by a pooled or future request; no abort decision yet.
            instance._progress()
            return
        if self._should_abort(performance, crashed_roles):
            self._abort(performance)
        else:
            self._absent_fallback(performance)

    # ------------------------------------------------------------------
    # Policy decision
    # ------------------------------------------------------------------

    def _should_abort(self, performance: Performance,
                      crashed_roles: list[RoleId]) -> bool:
        if self.critical is not None:
            return any(role in self.critical
                       or family_of(role) in self.critical
                       for role in crashed_roles)
        return not self.instance._critical_covered(performance)

    # ------------------------------------------------------------------
    # Non-critical: demote the crashed role to absence
    # ------------------------------------------------------------------

    def _absent_fallback(self, performance: Performance) -> None:
        scheduler = self.instance.scheduler
        dead = frozenset(performance.address(role)
                         for role in performance.crashed)
        # Unwind partners whose every pending offer targets a dead address;
        # RoleContext translates the signal into the unfilled-role policy.
        # (Offers with at least one live branch are left in place: those
        # branches may still commit.)
        for blocked_name in scheduler.blocked_only_on(dead):
            scheduler.interrupt(blocked_name, CrashedPartnerSignal(dead))
        # The performance may now be able to end (the crashed role no
        # longer counts toward all_filled_done), and waiters blocked on
        # "filled or absent" wake at the next settle.
        self.instance._check_ended(performance)

    # ------------------------------------------------------------------
    # Critical: abort the performance and release survivors
    # ------------------------------------------------------------------

    def abort_current(self) -> bool:
        """Abort the instance's forming/active performance, if any.

        For escalation paths *outside* the crash pipeline — e.g. a
        restart policy quarantining a critical role's process: the role
        can never be refilled, so a performance waiting on it would
        deadlock the run.  Returns True when a performance was aborted.
        """
        performance = self.instance.current
        if performance is None or performance.ended:
            return False
        self._abort(performance)
        return True

    def _abort(self, performance: Performance) -> None:
        instance = self.instance
        scheduler = instance.scheduler
        self.aborts += 1
        performance.aborted = True
        if not SKIP_ABORT_PERFORMANCE_END:
            performance.ended = True
        crashed = tuple(sorted(performance.crashed, key=repr))
        instance._emit(EventKind.PERFORMANCE_ABORT, None,
                       performance=performance.id,
                       crashed=[repr(r) for r in crashed],
                       survivors=[repr(r) for r in
                                  sorted(performance.filled, key=repr)])
        if self.on_abort is not None:
            self.on_abort(performance)
        for role, request in list(performance.filled.items()):
            if role in performance.done:
                continue  # body finished; delayed termination sees `ended`
            survivor: Hashable = request.process
            scheduler.drop_alias(survivor, performance.address(role))
            scheduler.interrupt(
                survivor, PerformanceAborted(performance.id, role, crashed))
        if instance.current is performance:
            # Deliberately no _progress() here: the next performance forms
            # at the next enrollment, giving pooled survivors a chance to
            # withdraw first (their withdraw_when predicates re-run at the
            # next settle, before any new submission).
            instance.current = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Supervisor of {self.instance.name} crashes={self.crashes} "
                f"aborts={self.aborts}>")
