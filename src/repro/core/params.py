"""Role data parameters: modes, binding, and copy-back.

The paper associates *data parameters* with each role; they are "bound at
enrollment time to the corresponding actual parameters supplied by the
enrolling process", with "parameter passing modes inherited from the host
programming language".  We reproduce the three Ada modes the Section IV
translation distinguishes (the start/stop entry split of Figure 10):

* ``IN`` — value copied from the actual at enrollment;
* ``OUT`` — value copied back to the actual at de-enrollment;
* ``IN_OUT`` — both.

Inside a role body, ``OUT`` and ``IN_OUT`` parameters appear as
:class:`Cell` objects the body assigns through ``cell.value``; ``IN``
parameters appear as plain values.  The enrolling process receives the final
``OUT``/``IN_OUT`` values both as the return value of ``enroll`` (a dict)
and, when it passed a :class:`Ref`, copied into the ref — the library
analogue of a ``VAR`` actual parameter.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Mapping, Sequence

from ..errors import EnrollmentError, ScriptDefinitionError


class Mode(enum.Enum):
    """Parameter passing modes (Ada's in / out / in out)."""

    IN = "in"
    OUT = "out"
    IN_OUT = "in out"


@dataclasses.dataclass(frozen=True, slots=True)
class Param:
    """Declaration of one formal data parameter of a role."""

    name: str
    mode: Mode = Mode.IN

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ScriptDefinitionError(
                f"parameter name {self.name!r} is not a valid identifier")


class Ref:
    """A mutable actual-parameter cell (the caller's ``VAR`` variable).

    Pass a ``Ref`` as the actual for an ``OUT`` or ``IN_OUT`` formal; after
    enrollment returns, ``ref.value`` holds the role's final value.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any = None):
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Ref({self.value!r})"


class Cell:
    """A formal-parameter cell visible inside a role body.

    The role body reads and assigns ``cell.value``; the enrollment machinery
    copies the final value back out according to the parameter's mode.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: Any = None):
        self.name = name
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cell({self.name}={self.value!r})"


def validate_actuals(role_id: Any, params: Sequence[Param],
                     actuals: Mapping[str, Any]) -> None:
    """Check that the supplied actuals fit the role's formals.

    Every formal must be supplied unless it is pure ``OUT`` (whose actual
    may be omitted or be a :class:`Ref`); unknown names are rejected.
    """
    formal_names = {p.name for p in params}
    unknown = set(actuals) - formal_names
    if unknown:
        raise EnrollmentError(
            f"role {role_id!r}: unknown parameter(s) {sorted(unknown)}; "
            f"formals are {sorted(formal_names)}")
    for param in params:
        if param.mode in (Mode.IN, Mode.IN_OUT) and param.name not in actuals:
            raise EnrollmentError(
                f"role {role_id!r}: missing actual for {param.mode.value} "
                f"parameter {param.name!r}")


def bind_formals(params: Sequence[Param],
                 actuals: Mapping[str, Any]) -> dict[str, Any]:
    """Build the keyword arguments handed to the role body.

    ``IN`` formals get the actual's current value (dereferencing a
    :class:`Ref` actual); ``OUT``/``IN_OUT`` formals get a fresh
    :class:`Cell` (pre-loaded with the actual's value for ``IN_OUT``).
    """
    bound: dict[str, Any] = {}
    for param in params:
        actual = actuals.get(param.name)
        if isinstance(actual, Ref):
            current = actual.value
        else:
            current = actual
        if param.mode is Mode.IN:
            bound[param.name] = current
        elif param.mode is Mode.OUT:
            bound[param.name] = Cell(param.name)
        else:  # IN_OUT
            bound[param.name] = Cell(param.name, current)
    return bound


def copy_back(params: Sequence[Param], bound: Mapping[str, Any],
              actuals: Mapping[str, Any]) -> dict[str, Any]:
    """Copy ``OUT``/``IN_OUT`` results out of the cells.

    Returns the dict of final out-values and updates any :class:`Ref`
    actuals in place.
    """
    out_values: dict[str, Any] = {}
    for param in params:
        if param.mode is Mode.IN:
            continue
        cell = bound[param.name]
        out_values[param.name] = cell.value
        actual = actuals.get(param.name)
        if isinstance(actual, Ref):
            actual.value = cell.value
    return out_values
