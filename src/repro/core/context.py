"""The role context: what a role body sees while it performs.

Each enrolled role body receives a :class:`RoleContext` as its first
argument.  The context provides *role-addressed* communication — roles name
roles, never the concrete processes enrolled in them, exactly as in the
paper ("the naming conventions of the host-languages apply to the roles") —
plus the paper's ``r.terminated`` query and introspection helpers.

Communication is scoped to the performance: messages carry the performance
id inside their rendezvous tag, so concurrent performances of different
instances (or plain process traffic) can never cross-talk.

Communication with a role that is *absent* (unfilled when the critical role
set completed) follows the script's unfilled-role policy: it either returns
the :data:`~repro.core.policies.UNFILLED` distinguished value or raises
:class:`~repro.errors.UnfilledRoleError` (Section II, "Critical Role Set").
A named communication with a role that is merely *not yet* filled blocks
until the role fills — the immediate-initiation rule that "a role is
delayed only if it attempts to communicate with an unfilled role".
"""

from __future__ import annotations

import dataclasses
from typing import Any, Generator, Hashable, Sequence, TYPE_CHECKING

from ..errors import CrashedPartnerSignal, UnfilledRoleError
from ..runtime import (ELSE_BRANCH, TIMED_OUT, TIMED_OUT_BRANCH, Receive,
                       ReceiveTimeout, Select, Send, WaitUntil)
from .performance import Performance, RoleAddress
from .policies import UNFILLED, UnfilledPolicy
from .roles import RoleId, is_family_member

if TYPE_CHECKING:  # pragma: no cover
    from .instance import ScriptInstance

Body = Generator[Any, Any, Any]

#: Select result index meaning "every named branch target was absent".
ALL_ABSENT = -2


@dataclasses.dataclass(frozen=True, slots=True)
class SendTo:
    """A send branch for :meth:`RoleContext.select`."""

    role: RoleId
    value: Any
    tag: Hashable = None


@dataclasses.dataclass(frozen=True, slots=True)
class ReceiveFrom:
    """A receive branch for :meth:`RoleContext.select` (role=None: anyone)."""

    role: RoleId | None = None
    tag: Hashable = None


@dataclasses.dataclass(frozen=True, slots=True)
class RoleSelectResult:
    """Outcome of :meth:`RoleContext.select`.

    ``index`` is the position in the original branch list (or
    :data:`ALL_ABSENT` / :data:`~repro.runtime.ELSE_BRANCH`); ``value`` is
    the received value for receive branches; ``sender`` is the partner
    role id for receive branches.
    """

    index: int
    value: Any = None
    sender: RoleId | None = None


class RoleContext:
    """Handle given to a role body for the duration of one performance."""

    def __init__(self, instance: "ScriptInstance", performance: Performance,
                 role_id: RoleId, process: Hashable):
        self.instance = instance
        self.performance = performance
        self.role_id = role_id
        self.process = process

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def index(self) -> int | None:
        """This role's family index, or ``None`` for singleton roles."""
        if is_family_member(self.role_id):
            return self.role_id[1]
        return None

    def terminated(self, role_id: RoleId) -> bool:
        """The paper's ``r.terminated``: finished, or definitely absent."""
        return self.performance.role_terminated(role_id)

    def is_filled(self, role_id: RoleId) -> bool:
        """Whether ``role_id`` is (currently) filled in this performance."""
        return role_id in self.performance.filled

    def partners(self) -> dict[RoleId, Hashable]:
        """The current process-to-role binding of this performance."""
        return self.performance.binding()

    def enrolled_count(self, family: str) -> int:
        """How many members of ``family`` are enrolled so far."""
        return self.performance.family_count(family)

    def family_indices(self, family: str) -> list[int]:
        """Indices of the currently enrolled members of ``family``."""
        return self.performance.family_indices(family)

    def close_enrollment(self) -> None:
        """Seal the current performance (open-ended scripts, Section V)."""
        self.instance.seal_current()

    # ------------------------------------------------------------------
    # Addressing internals
    # ------------------------------------------------------------------

    def _my_alias(self) -> RoleAddress:
        return self.performance.address(self.role_id)

    def _wrap_tag(self, tag: Hashable) -> Hashable:
        return (self.performance.id, tag)

    def _handle_absent(self, role_id: RoleId) -> Any:
        if self.instance.unfilled is UnfilledPolicy.ERROR:
            raise UnfilledRoleError(
                f"role {self.role_id!r} communicated with absent role "
                f"{role_id!r} in performance {self.performance.id}")
        return UNFILLED

    def _await_filled_or_absent(self, role_id: RoleId) -> Body:
        """Block until ``role_id`` is filled or definitely absent."""
        performance = self.performance
        yield WaitUntil(
            lambda: role_id in performance.filled
            or performance.is_absent(role_id),
            f"role {role_id!r} filled or absent")

    def _sender_role(self, sender_alias: Any) -> RoleId | None:
        if isinstance(sender_alias, RoleAddress):
            return sender_alias.role_id
        return sender_alias

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------

    def send(self, role_id: RoleId, value: Any, tag: Hashable = None) -> Body:
        """Send ``value`` to ``role_id``, synchronously.

        Blocks while the target is unfilled-but-fillable; applies the
        unfilled-role policy when the target is absent.  Returns ``None``
        on success, :data:`UNFILLED` for an absent partner.
        """
        yield from self._await_filled_or_absent(role_id)
        if self.performance.is_absent(role_id):
            return self._handle_absent(role_id)
        try:
            yield Send(self.performance.address(role_id), value,
                       tag=self._wrap_tag(tag), as_alias=self._my_alias())
        except CrashedPartnerSignal:
            # The partner died mid-rendezvous and was supervised into
            # absence: same policy as sending to an absent role.
            return self._handle_absent(role_id)
        return None

    def receive(self, role_id: RoleId | None = None, tag: Hashable = None,
                with_sender: bool = False,
                timeout: float | None = None) -> Body:
        """Receive from ``role_id`` (or from any role when ``None``).

        Returns the received value, or ``(value, sender_role_id)`` with
        ``with_sender=True``; returns :data:`UNFILLED` (or raises) when the
        named partner is absent.  With ``timeout=`` the *rendezvous* wait
        (not the wait for the role to fill) is bounded: if no partner
        commits within that many virtual-time units the distinguished
        falsy value :data:`~repro.runtime.TIMED_OUT` is returned instead.
        """
        if role_id is not None:
            yield from self._await_filled_or_absent(role_id)
            if self.performance.is_absent(role_id):
                return self._handle_absent(role_id)
            source: Any = self.performance.address(role_id)
        else:
            source = None
        try:
            if timeout is None:
                message = yield Receive(source, tag=self._wrap_tag(tag),
                                        with_sender=True)
            else:
                message = yield ReceiveTimeout(source, tag=self._wrap_tag(tag),
                                               with_sender=True,
                                               timeout=timeout)
                if message is TIMED_OUT:
                    return TIMED_OUT
        except CrashedPartnerSignal:
            if role_id is None:  # pragma: no cover - defensive
                raise
            return self._handle_absent(role_id)
        if with_sender:
            return message.value, self._sender_role(message.sender)
        return message.value

    def broadcast(self, family: str, value: Any, tag: Hashable = None) -> Body:
        """Send ``value`` to every currently filled member of ``family``.

        Convenience over :meth:`send`; members are visited in index order.
        Returns the list of indices reached.
        """
        indices = self.family_indices(family)
        for index in indices:
            yield from self.send((family, index), value, tag=tag)
        return indices

    def gather(self, family: str, tag: Hashable = None) -> Body:
        """Receive one value from every filled member of ``family``.

        Values are taken as they arrive (a select over the family), so slow
        members do not block fast ones.  Returns {index: value}.
        """
        pending = set(self.family_indices(family))
        collected: dict[int, Any] = {}
        while pending:
            # Members that crashed (or were absent all along) will never
            # answer; prune them before blocking on the rest.
            pending = {index for index in pending
                       if not self.performance.is_absent((family, index))}
            if not pending:
                break
            result = yield from self.select(
                [ReceiveFrom((family, index), tag=tag)
                 for index in sorted(pending)])
            if result.index == ALL_ABSENT:
                continue  # re-prune and re-check
            index = result.sender[1]
            collected[index] = result.value
            pending.discard(index)
        return collected

    def select(self, branches: Sequence[SendTo | ReceiveFrom],
               immediate: bool = False,
               timeout: float | None = None) -> Body:
        """Wait for one of several role communications to commit.

        Branches whose named target is *absent* are dropped; if every
        branch is dropped the result has ``index == ALL_ABSENT`` (under the
        DISTINGUISHED policy) or :class:`UnfilledRoleError` is raised.
        With ``immediate=True`` the result may have ``index ==
        ELSE_BRANCH`` when nothing can commit right now.  With ``timeout=``
        the result may have ``index ==``
        :data:`~repro.runtime.TIMED_OUT_BRANCH` when no branch committed in
        time.  If a partner crashes while we wait, the select is retried
        with the (now absent) branches dropped.
        """
        live_indices: list[int] = []
        effects: list[Send | Receive] = []
        for position, branch in enumerate(branches):
            if isinstance(branch, SendTo):
                if self.performance.is_absent(branch.role):
                    continue
                effects.append(Send(self.performance.address(branch.role),
                                    branch.value, tag=self._wrap_tag(branch.tag),
                                    as_alias=self._my_alias()))
            elif isinstance(branch, ReceiveFrom):
                if branch.role is not None:
                    if self.performance.is_absent(branch.role):
                        continue
                    source: Any = self.performance.address(branch.role)
                else:
                    source = None
                effects.append(Receive(source, tag=self._wrap_tag(branch.tag)))
            else:
                raise TypeError(f"select branch must be SendTo or "
                                f"ReceiveFrom, got {branch!r}")
            live_indices.append(position)

        if not effects:
            if self.instance.unfilled is UnfilledPolicy.ERROR:
                raise UnfilledRoleError(
                    f"role {self.role_id!r}: every select branch targets an "
                    f"absent role in performance {self.performance.id}")
            return RoleSelectResult(index=ALL_ABSENT)

        try:
            result = yield Select(tuple(effects), immediate=immediate,
                                  timeout=timeout)
        except CrashedPartnerSignal:
            # Some partner died mid-wait; crashed roles are now absent, so
            # the retry drops their branches (or reports ALL_ABSENT).
            return (yield from self.select(branches, immediate=immediate,
                                           timeout=timeout))
        if result.index == ELSE_BRANCH:
            return RoleSelectResult(index=ELSE_BRANCH)
        if result.index == TIMED_OUT_BRANCH:
            return RoleSelectResult(index=TIMED_OUT_BRANCH)
        return RoleSelectResult(index=live_indices[result.index],
                                value=result.value,
                                sender=self._sender_role(result.sender))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RoleContext {self.role_id!r} of {self.performance.id} "
                f"played by {self.process!r}>")
