"""Joint-enrollment matching: finding a consistent process-to-role binding.

Partners-named enrollment means processes "will jointly enroll in the script
only when their enrollment specifications match, that is they all agree on
the binding of processes to roles".  With disjunctive constraints ("A or B")
this is a small constraint-satisfaction problem; the pool sizes involved are
tiny, so a straightforward backtracking search suffices.

Requests may target:

* a singleton role or a concrete family member ``(family, index)``;
* a *closed* family by bare name — "any free index" — in which case the
  matcher allocates a concrete index;
* an *open* family by bare name (Section V open-ended scripts), where fresh
  indices are materialised per performance.

Two entry points:

* :func:`solve` — batch matching for delayed initiation: given the pool of
  pending requests, find an assignment that covers some critical role set
  and is mutually consistent, then greedily extend it with every other
  compatible pending request (maximising participation).

* :func:`consistent_extension` — incremental matching for immediate
  initiation: may ``request`` join a partially-filled performance without
  violating any already-accepted request's constraints?
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, Iterable, Mapping, Sequence

from .enrollment import EnrollmentRequest
from .roles import RoleId, family_member, family_of

#: A critical-set item: a concrete role id, or an open family's name (str).
CriticalItem = Hashable


@dataclasses.dataclass(slots=True)
class Assignment:
    """A proposed set of joint enrollments.

    ``bindings`` maps each filled concrete role id to its request.
    ``family_members`` holds open-family requests still awaiting a concrete
    index (the coordinator allocates indices at activation).
    """

    bindings: dict[RoleId, EnrollmentRequest]
    family_members: dict[str, list[EnrollmentRequest]]

    def processes(self) -> set[Hashable]:
        """Every process appearing in this assignment."""
        used = {r.process for r in self.bindings.values()}
        for requests in self.family_members.values():
            used.update(r.process for r in requests)
        return used

    def all_requests(self) -> list[EnrollmentRequest]:
        """Every request in this assignment (bindings + open members)."""
        requests = list(self.bindings.values())
        for members in self.family_members.values():
            requests.extend(members)
        return requests

    def pairs(self) -> list[tuple[RoleId, EnrollmentRequest]]:
        """(role, request) pairs; open members use the family name."""
        result = list(self.bindings.items())
        for family, members in self.family_members.items():
            result.extend((family, m) for m in members)
        return result


def _pairwise_consistent(existing: Iterable[tuple[RoleId, EnrollmentRequest]],
                         role_id: RoleId,
                         request: EnrollmentRequest) -> bool:
    """Check mutual constraints between a candidate and accepted requests."""
    if not request.accepts_binding(role_id, request.process):
        return False
    for bound_role, bound_request in existing:
        if not request.accepts_binding(bound_role, bound_request.process):
            return False
        if not bound_request.accepts_binding(role_id, request.process):
            return False
    return True


def consistent_extension(filled: Mapping[RoleId, EnrollmentRequest],
                         role_id: RoleId,
                         request: EnrollmentRequest,
                         allow_same_process: bool = False) -> bool:
    """May ``request`` fill ``role_id`` in a performance bound as ``filled``?

    ``allow_same_process`` permits one process to hold several roles of the
    same performance — legal only under immediate initiation with immediate
    termination, per Section II.
    """
    if role_id in filled:
        return False
    if not allow_same_process:
        if any(r.process == request.process for r in filled.values()):
            return False
    return _pairwise_consistent(filled.items(), role_id, request)


def slot_candidates(pool: Sequence[EnrollmentRequest],
                    role_id: RoleId) -> list[EnrollmentRequest]:
    """Pending requests that could fill concrete role ``role_id``.

    A request naming the family without an index ("any free index") is a
    candidate for every member of that family.
    """
    family = family_of(role_id)
    return [r for r in pool
            if r.role_id == role_id
            or (family is not None and r.role_id == family)]


def _family_candidates(pool: Sequence[EnrollmentRequest],
                       family: str) -> list[EnrollmentRequest]:
    """Pending requests targeting open family ``family`` (bare name)."""
    return [r for r in pool if r.role_id == family]


def _search(slots: list[tuple[RoleId | None, list[EnrollmentRequest]]],
            chosen: list[EnrollmentRequest],
            chosen_roles: list[RoleId],
            used: set[Hashable]) -> bool:
    """Backtracking over the slot list; fills ``chosen`` on success.

    A slot is ``(concrete_role_id, candidates)`` or ``(None, candidates)``
    for an anonymous open-family slot, whose effective role id (for
    constraint checking) is the candidate's family name.
    """
    if not slots:
        return True
    role_id, candidates = slots[0]
    for candidate in candidates:
        if any(candidate is c for c in chosen) or candidate.process in used:
            continue
        effective_role = role_id if role_id is not None else candidate.role_id
        if not _pairwise_consistent(zip(chosen_roles, chosen),
                                    effective_role, candidate):
            continue
        chosen.append(candidate)
        chosen_roles.append(effective_role)
        used.add(candidate.process)
        if _search(slots[1:], chosen, chosen_roles, used):
            return True
        chosen.pop()
        chosen_roles.pop()
        used.remove(candidate.process)
    return False


def solve(pool: Sequence[EnrollmentRequest],
          critical_sets: Sequence[frozenset[CriticalItem]],
          closed_families: Mapping[str, tuple[int, ...]],
          open_family_min: Mapping[str, int],
          open_family_max: Mapping[str, int | None],
          closed_role_ids: frozenset[RoleId]) -> Assignment | None:
    """Find a joint enrollment covering some critical set, or ``None``.

    ``critical_sets`` are tried in declaration order; within one set, the
    required slots are filled by backtracking over pending requests in
    arrival order (so earlier enrollments win ties, matching the FIFO
    fairness the paper attributes to Ada).  The base assignment is then
    greedily extended with every remaining compatible request.
    """
    pool = sorted(pool, key=lambda r: r.seq)
    for critical in critical_sets:
        slots: list[tuple[RoleId | None, list[EnrollmentRequest]]] = []
        feasible = True
        for item in sorted(critical, key=repr):
            if isinstance(item, str) and item in open_family_min:
                needed = open_family_min[item]
                candidates = _family_candidates(pool, item)
                if len(candidates) < needed:
                    feasible = False
                    break
                for _ in range(needed):
                    slots.append((None, candidates))
            else:
                candidates = slot_candidates(pool, item)
                if not candidates:
                    feasible = False
                    break
                slots.append((item, candidates))
        if not feasible:
            continue

        chosen: list[EnrollmentRequest] = []
        chosen_roles: list[RoleId] = []
        used: set[Hashable] = set()
        if not _search(slots, chosen, chosen_roles, used):
            continue

        assignment = Assignment(bindings={}, family_members={})
        for role_id, request in zip(chosen_roles, chosen):
            if role_id in open_family_min:
                assignment.family_members.setdefault(role_id, []).append(request)
            else:
                assignment.bindings[role_id] = request
        _extend_greedily(assignment, pool, closed_families,
                         open_family_min, open_family_max, closed_role_ids)
        return assignment
    return None


def _free_family_index(assignment: Assignment, family: str,
                       indices: tuple[int, ...]) -> int | None:
    """Lowest index of a closed family not yet bound in ``assignment``."""
    for index in sorted(indices):
        if family_member(family, index) not in assignment.bindings:
            return index
    return None


def _extend_greedily(assignment: Assignment,
                     pool: Sequence[EnrollmentRequest],
                     closed_families: Mapping[str, tuple[int, ...]],
                     open_family_min: Mapping[str, int],
                     open_family_max: Mapping[str, int | None],
                     closed_role_ids: frozenset[RoleId]) -> None:
    """Add every remaining compatible request, in arrival order."""
    taken = {id(r) for r in assignment.all_requests()}
    for request in pool:
        if id(request) in taken:
            continue
        if request.process in assignment.processes():
            continue
        target = request.role_id

        if isinstance(target, str) and target in open_family_min:
            members = assignment.family_members.setdefault(target, [])
            limit = open_family_max.get(target)
            if limit is not None and len(members) >= limit:
                continue
            if not _pairwise_consistent(assignment.pairs(), target, request):
                continue
            members.append(request)
            taken.add(id(request))
            continue

        if isinstance(target, str) and target in closed_families:
            index = _free_family_index(assignment, target,
                                       closed_families[target])
            if index is None:
                continue
            target = family_member(request.role_id, index)

        if target in assignment.bindings or target not in closed_role_ids:
            continue
        if not _pairwise_consistent(assignment.pairs(), target, request):
            continue
        assignment.bindings[target] = request
        taken.add(id(request))
