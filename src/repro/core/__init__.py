"""The script construct: the paper's central contribution.

Public surface:

* :class:`ScriptDef` — declare roles, parameters, policies, critical sets.
* :class:`ScriptInstance` — one runtime instance; its :meth:`enroll` is the
  ``ENROLL IN s AS r(params) WITH [...]`` operation.
* :class:`RoleContext` — what role bodies use to communicate role-to-role.
* :class:`Param`, :class:`Mode`, :class:`Ref` — data parameters.
* :class:`Initiation`, :class:`Termination`, :class:`UnfilledPolicy`,
  :data:`UNFILLED` — the Section II policy space.
* :class:`Supervisor` — crash policies (absence demotion / abort); attach
  via :meth:`ScriptInstance.supervise`.
"""

from .context import (ALL_ABSENT, ReceiveFrom, RoleContext, RoleSelectResult,
                      SendTo)
from .enrollment import EnrollmentRequest, normalize_partners
from .instance import ScriptInstance, SealPolicy
from .params import Cell, Mode, Param, Ref
from .performance import Performance, RoleAddress
from .policies import UNFILLED, Initiation, Termination, UnfilledPolicy
from .roles import (RoleFamily, RoleId, RoleSpec, family_member, family_of,
                    is_family_member)
from .script import ScriptDef
from .supervision import Supervisor

__all__ = [
    "ALL_ABSENT",
    "Cell",
    "EnrollmentRequest",
    "Initiation",
    "Mode",
    "Param",
    "Performance",
    "ReceiveFrom",
    "Ref",
    "RoleAddress",
    "RoleContext",
    "RoleFamily",
    "RoleId",
    "RoleSelectResult",
    "RoleSpec",
    "ScriptDef",
    "ScriptInstance",
    "SealPolicy",
    "SendTo",
    "Supervisor",
    "Termination",
    "UNFILLED",
    "UnfilledPolicy",
    "family_member",
    "family_of",
    "is_family_member",
    "normalize_partners",
]
