"""Script instances: the enrollment coordinator and the enroll operation.

A :class:`ScriptInstance` is one runtime instantiation of a
:class:`~repro.core.script.ScriptDef` on a scheduler.  It owns the pool of
pending enrollment requests and the sequence of performances, and it
enforces the paper's lifecycle rules:

* **initiation** — delayed (batch-match the pool for a consistent,
  critical-set-covering joint enrollment) or immediate (a performance
  begins at its first enrollment; later requests join incrementally);
* **sealing** — once a critical role set is covered, the participant set is
  final and still-unfilled roles become absent;
* **termination** — immediate (each process freed as its role ends) or
  delayed (all freed together when the performance ends);
* **successive activations** — a new performance forms only after the
  current one has ended (Figures 1 and 2).

Design note: the coordinator is *passive* — plain data manipulated from
within the enrolling processes' own steps, not an extra process.  The paper
criticises central-administrator implementations for "generating additional
processes when executing a script"; the library's built-in coordinator adds
none (the Section IV supervisor translations, which do add processes, are
implemented separately in :mod:`repro.translation` as existence proofs).
"""

from __future__ import annotations

import itertools
from typing import Any, Generator, Hashable, Mapping

from ..errors import PerformanceError
from ..runtime import DropAlias, EventKind, GetName, Scheduler, WaitUntil
from .context import RoleContext
from .enrollment import (EnrollmentRequest, RequestState, normalize_partners)
from .matching import consistent_extension, solve
from .params import bind_formals, copy_back, validate_actuals
from .performance import Performance
from .policies import Initiation, Termination, UnfilledPolicy
from .roles import RoleFamily, RoleId, family_member
from .script import ScriptDef

Body = Generator[Any, Any, Any]

_instance_counter = itertools.count(1)


class SealPolicy:
    """When an immediate-initiation performance seals its participant set.

    ``EAGER`` (the default) seals the moment a critical role set is
    covered.  ``MANUAL`` leaves the performance open until
    :meth:`ScriptInstance.seal_current` is called (used by open-ended
    scripts whose membership is decided at run time, Section V).
    """

    EAGER = "eager"
    MANUAL = "manual"


class ScriptInstance:
    """One runtime instance of a script on a scheduler."""

    def __init__(self, script: ScriptDef, scheduler: Scheduler,
                 name: str | None = None,
                 allow_multi_role: bool | None = None,
                 unfilled: UnfilledPolicy | None = None,
                 seal_policy: str = SealPolicy.EAGER):
        self.script = script
        self.scheduler = scheduler
        self.name = name or f"{script.name}@{next(_instance_counter)}"
        self.unfilled = unfilled if unfilled is not None else script.unfilled
        if allow_multi_role is None:
            allow_multi_role = (script.initiation is Initiation.IMMEDIATE and
                                script.termination is Termination.IMMEDIATE)
        elif allow_multi_role and not (
                script.initiation is Initiation.IMMEDIATE
                and script.termination is Termination.IMMEDIATE):
            raise PerformanceError(
                "a process may enroll in several roles of one performance "
                "only under immediate initiation and immediate termination")
        self.allow_multi_role = allow_multi_role
        if seal_policy not in (SealPolicy.EAGER, SealPolicy.MANUAL):
            raise PerformanceError(f"unknown seal policy {seal_policy!r}")
        self.seal_policy = seal_policy
        self.pool: list[EnrollmentRequest] = []
        self.current: Performance | None = None
        self.performances: list[Performance] = []
        self._perf_seq = itertools.count(1)
        self._request_seq = itertools.count()
        # Announce the instance and its policies into the trace so the
        # observability layer can attribute spans without reaching back
        # into live objects (exports must be buildable from events alone).
        self._emit(EventKind.INSTANCE_CREATED, None,
                   script=script.name,
                   initiation=script.initiation.value,
                   termination=script.termination.value,
                   critical_sets=[sorted(s, key=repr)
                                  for s in script.critical_sets])

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def enroll(self, role: RoleId, partners: Mapping[RoleId, Any] | None = None,
               withdraw_when: Any = None, **actuals: Any) -> Body:
        """Enroll the running process in ``role`` (a generator operation).

        ``role`` names a singleton role, a concrete family member
        ``(family, index)``, or a family by bare name ("any free index").
        ``partners`` optionally names required partners per role id —
        a process name, or a list/set of acceptable names (disjunctive
        naming).  ``actuals`` supply the role's data parameters; pass a
        :class:`~repro.core.params.Ref` for ``OUT``/``IN_OUT`` results.

        ``withdraw_when`` optionally supplies a predicate; if it becomes
        true while the request is still pooled, the enrollment is cancelled
        and ``None`` is returned (a conditional-enrollment guard; the paper
        notes the immediate/delayed termination distinction "is crucial if
        script enrollment is to be allowed to act as a guard").

        The role body executes as a logical continuation of the enrolling
        process.  Returns the dict of final ``OUT``/``IN_OUT`` values.
        """
        declaration = self.script.declaration_for(role)
        validate_actuals(role, declaration.params, actuals)
        process = yield GetName()
        request = EnrollmentRequest(
            process=process, role_id=role, actuals=dict(actuals),
            partners=normalize_partners(partners))
        self._submit(request)
        if withdraw_when is None:
            yield WaitUntil(lambda: request.assigned,
                            f"enrollment in {self.name} as {role!r}")
        else:
            yield WaitUntil(lambda: request.assigned or withdraw_when(),
                            f"enrollment in {self.name} as {role!r} "
                            f"(withdrawable)")
            if not request.assigned:
                self._withdraw(request)
                return None
        performance = request.performance
        role_id = request.assigned_role
        bound = bind_formals(declaration.params, actuals)
        context = RoleContext(self, performance, role_id, process)
        self._emit(EventKind.ROLE_START, process, role=role_id,
                   performance=performance.id)
        yield from declaration.body(context, **bound)
        self._role_finished(performance, role_id, process)
        if self.script.termination is Termination.DELAYED:
            yield WaitUntil(lambda: performance.ended,
                            f"delayed termination of {performance.id}")
        yield DropAlias(performance.address(role_id))
        return copy_back(declaration.params, bound, actuals)

    def _withdraw(self, request: EnrollmentRequest) -> None:
        request.state = RequestState.WITHDRAWN
        if request in self.pool:
            self.pool.remove(request)
        self._emit(EventKind.ENROLL_REQUEST, request.process,
                   role=request.role_id, seq=request.seq, withdrawn=True)

    def seal_current(self) -> None:
        """Seal the current performance's participant set (manual sealing)."""
        performance = self.current
        if performance is None or not performance.started:
            raise PerformanceError(f"{self.name}: no active performance to seal")
        if not performance.sealed:
            if not self._critical_covered(performance):
                raise PerformanceError(
                    f"{self.name}: cannot seal {performance.id}: no critical "
                    f"role set is covered")
            self._seal(performance)
            self._check_ended(performance)

    def supervise(self, critical: Any = None,
                  on_abort: Any = None) -> "Supervisor":
        """Attach a crash :class:`~repro.core.supervision.Supervisor`.

        After this, a mid-performance process crash no longer wedges the
        performance: a non-critical role falls back to the paper's
        unfilled-role semantics, a critical one aborts the performance
        with :class:`~repro.errors.PerformanceAborted`.  See
        :mod:`repro.core.supervision` for the policy details.
        """
        from .supervision import Supervisor
        return Supervisor(self, critical=critical, on_abort=on_abort)

    @property
    def performance_count(self) -> int:
        """Number of performances started so far."""
        return len(self.performances)

    @property
    def pending_count(self) -> int:
        """Number of enrollment requests still pooled."""
        return len(self.pool)

    # ------------------------------------------------------------------
    # Coordinator internals (plain synchronous state manipulation)
    # ------------------------------------------------------------------

    def _emit(self, kind: EventKind, process: Hashable, **details: Any) -> None:
        self.scheduler.tracer.emit(self.scheduler.now, kind, process,
                                   instance=self.name, **details)

    def _submit(self, request: EnrollmentRequest) -> None:
        # Renumber with the instance-local counter: the global default is
        # fine for FIFO order but would leak prior instances' request
        # counts into traces, breaking same-seed trace equality.
        request.seq = next(self._request_seq)
        self._emit(EventKind.ENROLL_REQUEST, request.process,
                   role=request.role_id,
                   partners={k: sorted(v, key=repr)
                             for k, v in request.partners.items()},
                   seq=request.seq)
        self.pool.append(request)
        self._progress()

    def _progress(self) -> None:
        """Drive the instance state machine to quiescence."""
        if self.current is not None and self.current.ended:
            self.current = None
        if self.current is None and self.pool:
            if self.script.initiation is Initiation.DELAYED:
                self._try_activate_delayed()
            else:
                self._start_immediate_performance()
        if (self.current is not None and not self.current.sealed
                and self.script.initiation is Initiation.IMMEDIATE):
            self._join_pending(self.current)
            if (self.seal_policy == SealPolicy.EAGER
                    and self._critical_covered(self.current)):
                self._seal(self.current)
                self._check_ended(self.current)

    # -- delayed initiation -------------------------------------------------

    def _try_activate_delayed(self) -> None:
        open_families = self.script.open_families
        assignment = solve(
            self.pool, self.script.critical_sets,
            self.script.closed_families,
            {name: fam.min_count for name, fam in open_families.items()},
            {name: fam.max_count for name, fam in open_families.items()},
            self.script.closed_role_ids)
        if assignment is None:
            return
        performance = Performance(self.name, next(self._perf_seq))
        self.performances.append(performance)
        bindings: dict[RoleId, EnrollmentRequest] = dict(assignment.bindings)
        for family, members in assignment.family_members.items():
            for offset, request in enumerate(
                    sorted(members, key=lambda r: r.seq), start=1):
                bindings[family_member(family, offset)] = request
        performance.started = True
        for role_id, request in bindings.items():
            self._assign(performance, role_id, request)
        self._seal(performance)
        self._emit(EventKind.PERFORMANCE_START, None,
                   performance=performance.id,
                   binding={repr(r): p for r, p in
                            performance.binding().items()})

    # -- immediate initiation -------------------------------------------------

    def _start_immediate_performance(self) -> None:
        performance = Performance(self.name, next(self._perf_seq))
        performance.started = True
        self.performances.append(performance)
        self.current = performance
        self._emit(EventKind.PERFORMANCE_START, None,
                   performance=performance.id, binding={})

    def _join_pending(self, performance: Performance) -> None:
        for request in sorted(self.pool, key=lambda r: r.seq):
            if performance.sealed:
                break
            role_id = self._resolve_target(performance, request)
            if role_id is None:
                continue
            if not consistent_extension(performance.filled, role_id, request,
                                        self.allow_multi_role):
                continue
            self._assign(performance, role_id, request)
            if (self.seal_policy == SealPolicy.EAGER
                    and self._critical_covered(performance)):
                self._seal(performance)

    def _resolve_target(self, performance: Performance,
                        request: EnrollmentRequest) -> RoleId | None:
        """Concrete role id this request would fill now, or ``None``."""
        target = request.role_id
        if isinstance(target, str):
            declaration = self.script.declarations[target]
            if isinstance(declaration, RoleFamily):
                if declaration.open:
                    count = performance.family_count(target)
                    if (declaration.max_count is not None
                            and count >= declaration.max_count):
                        return None
                    indices = performance.family_indices(target)
                    return family_member(target, (indices[-1] + 1)
                                         if indices else 1)
                for index in declaration.indices:
                    candidate = family_member(target, index)
                    if candidate not in performance.filled:
                        return candidate
                return None
            return target if target not in performance.filled else None
        return target if target not in performance.filled else None

    # -- shared machinery -------------------------------------------------

    def _assign(self, performance: Performance, role_id: RoleId,
                request: EnrollmentRequest) -> None:
        request.state = RequestState.ASSIGNED
        request.performance = performance
        request.assigned_role = role_id
        performance.filled[role_id] = request
        # A vacated-then-refilled role (pre-seal crash, new enrollee — e.g.
        # a supervised restart) is no longer crashed: its address is live
        # again and must not poison later absent-fallback dead sets.
        performance.crashed.discard(role_id)
        self.pool.remove(request)
        if self.current is None:
            self.current = performance
        self.scheduler.add_alias(request.process, performance.address(role_id))
        self._emit(EventKind.ENROLL_ACCEPT, request.process, role=role_id,
                   performance=performance.id, seq=request.seq)

    def _seal(self, performance: Performance) -> None:
        performance.sealed = True

    def _critical_covered(self, performance: Performance) -> bool:
        open_families = self.script.open_families
        for critical in self.script.critical_sets:
            covered = True
            for item in critical:
                if isinstance(item, str) and item in open_families:
                    if (performance.family_count(item)
                            < open_families[item].min_count):
                        covered = False
                        break
                elif item not in performance.filled:
                    covered = False
                    break
            if covered:
                return True
        return False

    def _role_finished(self, performance: Performance, role_id: RoleId,
                       process: Hashable) -> None:
        performance.done.add(role_id)
        self._emit(EventKind.ROLE_END, process, role=role_id,
                   performance=performance.id)
        self._check_ended(performance)

    def _check_ended(self, performance: Performance) -> None:
        if (performance.sealed and not performance.ended
                and performance.all_filled_done):
            performance.ended = True
            self._emit(EventKind.PERFORMANCE_END, None,
                       performance=performance.id,
                       filled=sorted(performance.filled, key=repr))
            self._progress()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ScriptInstance {self.name} performances="
                f"{len(self.performances)} pending={len(self.pool)}>")
