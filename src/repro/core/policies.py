"""Initiation, termination, and unfilled-role policies.

Section II of the paper lays out the policy design space:

* **Initiation** — ``DELAYED`` (all critical roles must enroll before any
  role's body begins; enforces a global synchronisation) or ``IMMEDIATE``
  (the script is activated by its first enrollment; a role is delayed only
  when it attempts to communicate with an unfilled role).

* **Termination** — ``DELAYED`` (all enrolled processes are freed together,
  once every participating role has finished) or ``IMMEDIATE`` (each process
  is freed as soon as its own role completes).

* **Unfilled roles** — when a performance begins with a critical role set
  that leaves some roles unfilled, attempts to communicate with those roles
  would block forever.  The paper sketches two resolutions; we implement
  both: ``DISTINGUISHED`` returns the :data:`UNFILLED` sentinel from the
  attempted communication, ``ERROR`` raises
  :class:`~repro.errors.UnfilledRoleError`.
"""

from __future__ import annotations

import enum


class Initiation(enum.Enum):
    """When a performance's roles may begin executing."""

    DELAYED = "delayed"
    IMMEDIATE = "immediate"


class Termination(enum.Enum):
    """When enrolled processes are freed from the script."""

    DELAYED = "delayed"
    IMMEDIATE = "immediate"


class UnfilledPolicy(enum.Enum):
    """What a communication with a definitely-unfilled role does."""

    DISTINGUISHED = "distinguished"
    ERROR = "error"


class _Unfilled:
    """Singleton distinguished value for communication with absent roles."""

    _instance: "_Unfilled | None" = None

    def __new__(cls) -> "_Unfilled":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNFILLED"

    def __bool__(self) -> bool:
        return False


#: The distinguished value returned by communications with absent roles
#: under :attr:`UnfilledPolicy.DISTINGUISHED`.
UNFILLED = _Unfilled()
