"""Performances: one collective activation of a script's roles.

The paper calls "the collective activation of all the roles of a script a
*performance*" and imposes the successive-activations rule: "all of the
roles of a given performance must terminate before a subsequent performance
of the same script can begin" (Figure 1).  A :class:`Performance` tracks the
binding of processes to roles, which roles have finished, and which roles
were left unfilled (absent) when the critical role set completed.

Lifecycle flags:

``started``
    Roles may execute.  Immediate initiation starts the performance at its
    first enrollment; delayed initiation starts it only once a critical
    role set is consistently filled.
``sealed``
    The participant set is final: a critical role set is covered, so every
    still-unfilled role is *absent* and reports ``terminated = true`` (the
    paper's ``r.terminated`` function).  Late enrollments go to the next
    performance.
``ended``
    Every filled role's body has finished; the successive-activations rule
    then allows the next performance to form.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable

from .enrollment import EnrollmentRequest
from .roles import RoleId, family_of


@dataclasses.dataclass(frozen=True, slots=True)
class RoleAddress:
    """The rendezvous alias of one role within one performance."""

    performance_id: str
    role_id: RoleId

    def __repr__(self) -> str:
        return f"{self.performance_id}:{self.role_id!r}"


class Performance:
    """State of one performance of a script instance."""

    def __init__(self, instance_name: str, seq: int):
        self.instance_name = instance_name
        self.seq = seq
        self.id = f"{instance_name}/p{seq}"
        self.filled: dict[RoleId, EnrollmentRequest] = {}
        self.done: set[RoleId] = set()
        self.crashed: set[RoleId] = set()
        self.started = False
        self.sealed = False
        self.ended = False
        self.aborted = False

    # -- addressing -------------------------------------------------------

    def address(self, role_id: RoleId) -> RoleAddress:
        """The rendezvous alias of ``role_id`` in this performance."""
        return RoleAddress(self.id, role_id)

    # -- queries ------------------------------------------------------------

    def process_for(self, role_id: RoleId) -> Hashable | None:
        """The process enrolled in ``role_id``, or ``None``."""
        request = self.filled.get(role_id)
        return request.process if request is not None else None

    def binding(self) -> dict[RoleId, Hashable]:
        """The full process-to-role binding."""
        return {role: req.process for role, req in self.filled.items()}

    def family_count(self, family: str) -> int:
        """How many members of ``family`` are currently filled."""
        return sum(1 for role in self.filled if family_of(role) == family)

    def family_indices(self, family: str) -> list[int]:
        """Sorted indices of the filled members of ``family``."""
        return sorted(role[1] for role in self.filled
                      if family_of(role) == family)

    def is_absent(self, role_id: RoleId) -> bool:
        """True when the participant set is final and ``role_id`` is not in it.

        A role whose process crashed mid-performance (and was supervised
        into absence) counts: its crash removed it from the participant
        set, so partners observe exactly the unfilled-role semantics.
        """
        return self.sealed and role_id not in self.filled

    def is_crashed(self, role_id: RoleId) -> bool:
        """True when ``role_id`` was vacated by a supervised process crash."""
        return role_id in self.crashed

    def role_terminated(self, role_id: RoleId) -> bool:
        """The paper's ``r.terminated`` function (Section II / Figure 5).

        False for unfilled roles while the critical set is incomplete; true
        for absent roles once it completes; true for filled roles whose
        body has finished.
        """
        if role_id in self.done:
            return True
        return self.is_absent(role_id)

    @property
    def all_filled_done(self) -> bool:
        """Have all participating roles finished their bodies?"""
        return set(self.filled) <= self.done

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("aborted" if self.aborted else
                 "ended" if self.ended else
                 "sealed" if self.sealed else
                 "started" if self.started else "gathering")
        return (f"<Performance {self.id} {state} filled={len(self.filled)} "
                f"done={len(self.done)}>")
