"""Role declarations: singleton roles and (possibly open) indexed families.

A *role* is a formal process parameter of a script.  The paper permits
"indexed families of roles in analogy to such families of actual processes"
(``ROLE recipient [i:1..5]``), and Section V proposes *open-ended* scripts
whose families have no fixed size until run time.  Both are declared here:

* a singleton role is identified by its name (``"sender"``);
* a member of a family is identified by ``(family_name, index)``;
* a *closed* family fixes its index set at definition time;
* an *open* family declares ``min_count``/``max_count`` bounds instead, and
  members materialise as processes enroll.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Generator, Hashable, Iterable, Sequence

from ..errors import ScriptDefinitionError
from .params import Param

#: Identifier of a role instance: a name, or (family_name, index).
RoleId = Hashable

#: A role body: generator function taking (RoleContext, **bound_params).
RoleBody = Callable[..., Generator[Any, Any, Any]]


def family_member(family: str, index: int) -> tuple[str, int]:
    """The role id of member ``index`` of family ``family``."""
    return (family, index)


def is_family_member(role_id: RoleId) -> bool:
    """True when ``role_id`` names a family member rather than a singleton."""
    return (isinstance(role_id, tuple) and len(role_id) == 2
            and isinstance(role_id[0], str) and isinstance(role_id[1], int))


def family_of(role_id: RoleId) -> str | None:
    """The family name of a member id, or ``None`` for singletons."""
    if is_family_member(role_id):
        return role_id[0]
    return None


@dataclasses.dataclass(frozen=True)
class RoleSpec:
    """A singleton role declaration."""

    name: str
    body: RoleBody
    params: tuple[Param, ...] = ()

    def __post_init__(self) -> None:
        _check_param_names(self.name, self.params)

    @property
    def role_ids(self) -> list[RoleId]:
        """The single id of this role."""
        return [self.name]


@dataclasses.dataclass(frozen=True)
class RoleFamily:
    """An indexed family of roles sharing one body and parameter list.

    ``indices`` fixes a closed family (``ROLE recipient [i:1..5]``).  An
    *open* family (Section V's open-ended scripts) passes ``indices=None``
    and bounds the per-performance membership with ``min_count`` /
    ``max_count`` instead.
    """

    name: str
    body: RoleBody
    params: tuple[Param, ...] = ()
    indices: tuple[int, ...] | None = None
    min_count: int = 0
    max_count: int | None = None

    def __post_init__(self) -> None:
        _check_param_names(self.name, self.params)
        if self.indices is not None:
            if len(set(self.indices)) != len(self.indices):
                raise ScriptDefinitionError(
                    f"family {self.name!r}: duplicate indices")
            if not self.indices:
                raise ScriptDefinitionError(
                    f"family {self.name!r}: empty index set")
        else:
            if self.min_count < 0:
                raise ScriptDefinitionError(
                    f"family {self.name!r}: negative min_count")
            if self.max_count is not None and self.max_count < max(1, self.min_count):
                raise ScriptDefinitionError(
                    f"family {self.name!r}: max_count {self.max_count} below "
                    f"min_count {self.min_count}")

    @property
    def open(self) -> bool:
        """True for open-ended families (size fixed only at run time)."""
        return self.indices is None

    @property
    def role_ids(self) -> list[RoleId]:
        """All member ids of a closed family (open families have none yet)."""
        if self.indices is None:
            return []
        return [family_member(self.name, i) for i in self.indices]

    def contains(self, role_id: RoleId) -> bool:
        """Whether ``role_id`` may denote a member of this family."""
        if not is_family_member(role_id) or role_id[0] != self.name:
            return False
        if self.indices is None:
            return True
        return role_id[1] in self.indices


RoleDecl = RoleSpec | RoleFamily


def _check_param_names(owner: str, params: Sequence[Param]) -> None:
    names = [p.name for p in params]
    if len(set(names)) != len(names):
        raise ScriptDefinitionError(f"role {owner!r}: duplicate parameter names")


def expand_role_ids(declarations: Iterable[RoleDecl]) -> list[RoleId]:
    """All statically known role ids of a script (open members excluded)."""
    ids: list[RoleId] = []
    for decl in declarations:
        ids.extend(decl.role_ids)
    return ids
