"""Script-to-Ada translation: Figures 9, 10 and 11, executable.

The paper's second existence proof replaces each role ``r_j`` of script
``s`` by a task ``s_r_j`` and adds one supervisor task, so ``n`` processes
become ``n + m + 1``.  Each role task gains two entries (Figure 10)::

    ENTRY start (v1 : IN t1; v3 : IN t3);
    ENTRY stop  (v2 : OUT t2; v3 : OUT t3);

and an enrollment ``ENROLL IN s AS r(in, out, inout)`` becomes::

    s_r.start(in-params, inout-params);
    s_r.stop(out-params, inout-params);

The role task (Figure 11) loops: accept ``start`` (copying in-parameters),
notify the supervisor, run the body ``B`` (whose role-entry calls
``r_j.x(y)`` become task-entry calls ``s_r_j.x(y)``), notify the
supervisor, and accept ``stop`` (copying out-parameters back).

The supervisor serialises performances through ``begin``/``finish`` entry
families — role *j* may begin performance *k+1* only after every role has
finished performance *k*, enforcing successive activations.

Both "unfortunate consequences" the paper calls out are reproduced
observably: the process count grows from *n* to *n + m + 1* (assertable via
:attr:`AdaTranslatedScript.process_overhead`), and the role tasks loop
forever unless bounded — ``install(performances=...)`` bounds them so test
programs still terminate.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Hashable, Mapping

from ..ada import AcceptedCall, AdaSystem, TaskContext, when
from ..errors import AdaError

Body = Generator[Any, Any, Any]

#: A role-task body: ``body(io, params) -> out-params dict``.
RoleTaskBody = Callable[["RoleTaskIO", dict[str, Any]], Body]


class RoleTaskIO:
    """Body-side view of the translated role: entry calls between role tasks.

    Calls to a role entry ``r_j.x(y)`` become task-entry calls
    ``s_r_j.x(y)`` (the paper's rule); accepts are unchanged.
    """

    def __init__(self, script: "AdaTranslatedScript", ctx: TaskContext):
        self._script = script
        self.ctx = ctx

    def call(self, role: str, entry: Hashable, *args: Any) -> Body:
        """Call ``role``'s entry (resolved to that role's task)."""
        result = yield from self.ctx.call(self._script.task_name(role),
                                          entry, *args)
        return result

    def accept(self, entry: Hashable) -> Generator[Any, Any, AcceptedCall]:
        """Accept a call on this role task's entry (unchanged by rule)."""
        call = yield from self.ctx.accept(entry)
        return call

    def accept_do(self, entry: Hashable,
                  body: Callable[..., Any] | None = None
                  ) -> Generator[Any, Any, AcceptedCall]:
        call = yield from self.ctx.accept_do(entry, body)
        return call


class AdaTranslatedScript:
    """A script compiled to Ada tasks per Figures 9-11."""

    def __init__(self, system: AdaSystem, name: str,
                 roles: Mapping[str, RoleTaskBody]):
        if not roles:
            raise AdaError("a script needs at least one role")
        self.system = system
        self.name = name
        self.roles = dict(roles)
        self.installed = False

    # -- naming ---------------------------------------------------------------

    def task_name(self, role: str) -> tuple[str, str, str]:
        """The task materialising ``role`` (the paper's ``s_r_j``)."""
        return (self.name, "role", role)

    @property
    def supervisor_name(self) -> tuple[str, str]:
        """The supervisor task's name."""
        return (self.name, "supervisor")

    @property
    def process_overhead(self) -> int:
        """Extra processes the translation creates: m role tasks + 1."""
        return len(self.roles) + 1

    # -- installation -----------------------------------------------------------

    def install(self, performances: int) -> None:
        """Spawn the m role tasks and the supervisor task.

        ``performances`` bounds the role-task loops; the paper notes the
        unbounded translation "can convert a terminating program into a
        non-terminating one".
        """
        if self.installed:
            raise AdaError(f"script {self.name!r} already installed")
        self.installed = True
        for role, body in self.roles.items():
            self.system.task(self.task_name(role),
                             self._role_task(role, body, performances))
        self.system.task(self.supervisor_name,
                         self._supervisor_task(performances))

    def _role_task(self, role: str, body: RoleTaskBody,
                   performances: int) -> Callable[[TaskContext], Body]:
        def task_body(ctx: TaskContext) -> Body:
            for _ in range(performances):
                # Figure 11: accept start, copying in-parameters to locals.
                start_call = yield from ctx.accept("start")
                in_params = dict(start_call.args[0])
                start_call.complete()
                yield from ctx.call(self.supervisor_name, ("begin", role))
                io = RoleTaskIO(self, ctx)
                out_params = yield from body(io, in_params)
                yield from ctx.call(self.supervisor_name, ("finish", role))
                # Accept stop, copying out-parameters back to the caller.
                stop_call = yield from ctx.accept("stop")
                stop_call.complete(out_params if out_params is not None else {})
        return task_body

    def _supervisor_task(self, performances: int
                         ) -> Callable[[TaskContext], Body]:
        def task_body(ctx: TaskContext) -> Body:
            roles = list(self.roles)
            for _ in range(performances):
                pending = set(roles)
                while pending:
                    entry, call = yield from ctx.select(
                        [when(True, ("begin", role)) for role in pending])
                    call.complete()
                    pending.discard(entry[1])
                pending = set(roles)
                while pending:
                    entry, call = yield from ctx.select(
                        [when(True, ("finish", role)) for role in pending])
                    call.complete()
                    pending.discard(entry[1])
        return task_body

    # -- enrollment ---------------------------------------------------------------

    def enroll(self, ctx: TaskContext, role: str,
               **in_params: Any) -> Body:
        """The translated enrollment: ``s_r.start(in); s_r.stop(out)``.

        Run with ``yield from`` inside an Ada task body; returns the role's
        out-parameters dict.
        """
        if role not in self.roles:
            raise AdaError(f"script {self.name!r} has no role {role!r}")
        if not self.installed:
            raise AdaError(f"script {self.name!r} not installed")
        task = self.task_name(role)
        yield from ctx.call(task, "start", in_params)
        out_params = yield from ctx.call(task, "stop")
        return out_params


def make_ada_broadcast(system: AdaSystem, n: int = 5) -> AdaTranslatedScript:
    """Figure 8's broadcast, compiled per Figures 9-11.

    The body is the figure's "reverse broadcast": recipients *call* the
    sender's ``receive`` entry, because Ada callers must name the callee
    while accepts are anonymous.
    """

    def sender(io: RoleTaskIO, params: dict[str, Any]) -> Body:
        data = params["data"]
        completed = 0
        while completed < n:
            yield from io.accept_do("receive", lambda: data)
            completed += 1
        return {}

    def recipient(io: RoleTaskIO, params: dict[str, Any]) -> Body:
        value = yield from io.call("sender", "receive")
        return {"data": value}

    roles: dict[str, RoleTaskBody] = {"sender": sender}
    for i in range(1, n + 1):
        roles[f"r{i}"] = recipient
    return AdaTranslatedScript(system, "broadcast", roles)
