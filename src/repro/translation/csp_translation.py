"""Script-to-CSP translation: the Section IV existence proof, executable.

The paper shows that scripts (restricted to CSP's naming rules) "do not
transcend the direct expressive power of CSP" by giving translation rules:

1. an enrollment ``ENROLL IN s AS r(params) WITH [...]`` becomes an output
   command ``p_s!start_s()`` to a *supervisor process* ``p_s`` (Figure 7);
2. the role body is expanded **in-line** in the enrolling process, with role
   names replaced by the process names given in the enrollment's ``WITH``
   binding and every communication tagged with the script instance name
   (so translated traffic can never collide with other traffic);
3. the body is followed by ``p_s!end_s()``.

The supervisor's guarded loop accepts ``start`` for a role only while that
role's slot is free, and re-opens all slots only after every role has
ended — which is precisely the successive-activations rule.  As the paper
notes, this centralised translation is an existence proof, not a proposed
implementation; the overhead benchmark quantifies the difference against
the engine's passive coordinator.

Restrictions faithfully carried over: partners must be fully named (CSP
naming), initiation and termination are immediate, and the supervisor is
parameterised by a performance count because "the translation can convert a
terminating program into a non-terminating one" — a bounded supervisor
keeps test runs terminating.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Hashable, Mapping, Sequence

from ..errors import CSPError
from ..runtime import Receive, Select, Send

Body = Generator[Any, Any, Any]

#: A translated role body: ``body(io, **params)``.
TranslatedBody = Callable[..., Body]


class CSPRoleIO:
    """Role-to-role communication, resolved to process names (rule 2).

    ``binding`` maps every role name the body mentions to the concrete
    process enrolled in it — the ``WITH [qa AS recipient[1], ...]`` clause.
    All communications are tagged with the script instance name (rule 2c).
    """

    def __init__(self, script_name: str, binding: Mapping[str, Hashable]):
        self.script_name = script_name
        self.binding = dict(binding)

    def _partner(self, role: str) -> Hashable:
        try:
            return self.binding[role]
        except KeyError:
            raise CSPError(
                f"role {role!r} not named in the enrollment binding "
                f"(CSP requires full partner naming)") from None

    def send(self, role: str, value: Any) -> Body:
        """``role!value`` translated to ``P_role!s(value)``."""
        yield Send(self._partner(role), value, tag=self.script_name)

    def receive(self, role: str) -> Body:
        """``role?x`` translated to ``P_role?s(x)``."""
        value = yield Receive(self._partner(role), tag=self.script_name)
        return value

    def select(self, branches: Sequence[tuple[str, str, Any] | tuple[str, str]]
               ) -> Body:
        """Guarded choice over role communications.

        Branches are ``("send", role, value)`` or ``("recv", role)``.
        Returns ``(index, value)``.
        """
        effects: list[Send | Receive] = []
        for branch in branches:
            if branch[0] == "send":
                _, role, value = branch
                effects.append(Send(self._partner(role), value,
                                    tag=self.script_name))
            elif branch[0] == "recv":
                effects.append(Receive(self._partner(branch[1]),
                                       tag=self.script_name))
            else:
                raise CSPError(f"unknown branch kind {branch[0]!r}")
        result = yield Select(tuple(effects))
        return result.index, result.value


class CSPTranslatedScript:
    """A script compiled to CSP: in-line bodies plus the Figure 7 supervisor."""

    def __init__(self, name: str, roles: Mapping[str, TranslatedBody]):
        if not roles:
            raise CSPError("a script needs at least one role")
        self.name = name
        self.roles = dict(roles)
        self.supervisor_name = f"p_{name}"

    # -- supervisor (Figure 7) ------------------------------------------------

    def supervisor_body(self, performances: int) -> Body:
        """The process ``p_s``: serialise performances of the whole role set.

        For each performance, every role slot accepts one ``start``; a slot
        re-opens only after *all* roles have sent ``end``.
        """
        for _ in range(performances):
            ready = {role: True for role in self.roles}
            done = {role: False for role in self.roles}
            while not all(done.values()):
                branches: list[Receive] = []
                keys: list[tuple[str, str]] = []
                for role in self.roles:
                    if ready[role]:
                        branches.append(
                            Receive(tag=("start", self.name, role)))
                        keys.append(("start", role))
                    elif not done[role]:
                        branches.append(
                            Receive(tag=("end", self.name, role)))
                        keys.append(("end", role))
                result = yield Select(tuple(branches))
                kind, role = keys[result.index]
                if kind == "start":
                    ready[role] = False
                else:
                    done[role] = True

    # -- enrollment (translation rules 1-3) -----------------------------------

    def enroll(self, role: str, binding: Mapping[str, Hashable],
               **params: Any) -> Body:
        """The translated ``ENROLL IN s AS role(params) WITH binding``.

        To be run in-line (``yield from``) inside the enrolling process.
        ``binding`` must name a process for every role this role's body
        communicates with.  Returns whatever the body returns.
        """
        if role not in self.roles:
            raise CSPError(f"script {self.name!r} has no role {role!r}")
        yield Send(self.supervisor_name, None, tag=("start", self.name, role))
        io = CSPRoleIO(self.name, binding)
        result = yield from self.roles[role](io, **params)
        yield Send(self.supervisor_name, None, tag=("end", self.name, role))
        return result


def make_csp_broadcast(n: int = 5) -> CSPTranslatedScript:
    """Figure 6's broadcast as a translated-CSP script.

    The transmitter is the figure's repetitive command: while any recipient
    is unsent, nondeterministically pick one and output ``x`` to it.
    """
    recipient_roles = [f"recipient{i}" for i in range(1, n + 1)]

    def transmitter(io: CSPRoleIO, x: Any) -> Body:
        sent = {role: False for role in recipient_roles}
        while not all(sent.values()):
            pending = [role for role in recipient_roles if not sent[role]]
            index, _ = yield from io.select(
                [("send", role, x) for role in pending])
            sent[pending[index]] = True
        return None

    def recipient(io: CSPRoleIO) -> Body:
        value = yield from io.receive("transmitter")
        return value

    roles: dict[str, TranslatedBody] = {"transmitter": transmitter}
    for role in recipient_roles:
        roles[role] = recipient
    return CSPTranslatedScript("broadcast", roles)
