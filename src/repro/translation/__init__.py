"""Section IV translations: scripts expressed in pure CSP and pure Ada.

These are the paper's existence proofs that the script construct "should
not add functional power to the host language".  They are intentionally
centralised (supervisor process/task); the built-in engine coordinator in
:mod:`repro.core` is the process-free implementation, and
``benchmarks/test_translation_overhead.py`` quantifies the gap.
"""

from .ada_translation import (AdaTranslatedScript, RoleTaskIO,
                              make_ada_broadcast)
from .csp_translation import (CSPRoleIO, CSPTranslatedScript,
                              make_csp_broadcast)

__all__ = [
    "AdaTranslatedScript",
    "CSPRoleIO",
    "CSPTranslatedScript",
    "RoleTaskIO",
    "make_ada_broadcast",
    "make_csp_broadcast",
]
