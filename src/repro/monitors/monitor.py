"""Monitors with mutual exclusion and ``WAIT UNTIL`` condition synchronisation.

The paper's third host is "a shared-variable language with monitors" whose
monitor procedures may block on ``WAIT UNTIL <predicate>`` (Figure 12).  A
:class:`Monitor` subclass declares its public procedures as generator
methods decorated with :func:`procedure`; the decorator wraps each call in
acquire/release of the monitor's lock, so at most one process executes any
procedure of the monitor at a time — even across virtual-time delays, which
is how the serialization cost of a single shared monitor becomes measurable
(the Figure 12 benchmark).

Inside a procedure, ``yield from self.wait_until(pred)`` atomically releases
the monitor, blocks until the predicate holds, and re-acquires before
re-checking — the classic condition-variable loop, with the predicate
standing in for an explicitly signalled condition queue.

Lock ownership is tracked by per-activation *tickets* so that an activation
abandoned while blocked in ``wait_until`` (for example, when its process is
killed) never releases a lock that a different activation now holds.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Generator

from ..errors import MonitorError
from ..runtime import WaitUntil

Body = Generator[Any, Any, Any]


class _Ticket:
    """Identity of one procedure activation, for lock ownership."""

    __slots__ = ()


class Monitor:
    """Base class for monitors.

    Subclasses define state in ``__init__`` (calling ``super().__init__()``)
    and generator-method procedures decorated with :func:`procedure`.
    """

    def __init__(self, name: str = ""):
        self.name = name or type(self).__name__
        self._locked_by: _Ticket | None = None
        self._entries = 0  # total procedure activations, for diagnostics

    # -- locking ---------------------------------------------------------

    def _acquire(self, ticket: _Ticket) -> Body:
        # A woken waiter may lose the race to another acquirer that ran
        # first; loop until the check-and-set succeeds (the set is atomic
        # because the scheduler is cooperative).
        while True:
            yield WaitUntil(lambda: self._locked_by is None,
                            f"monitor {self.name} free")
            if self._locked_by is None:
                self._locked_by = ticket
                return

    def _release(self, ticket: _Ticket) -> None:
        if self._locked_by is not ticket:
            raise MonitorError(
                f"monitor {self.name} released by a non-owner activation")
        self._locked_by = None

    @property
    def locked(self) -> bool:
        """True while some process is inside the monitor."""
        return self._locked_by is not None

    # -- condition synchronisation ----------------------------------------

    def wait_until(self, predicate: Callable[[], bool],
                   description: str = "monitor condition") -> Body:
        """The paper's ``WAIT UNTIL predicate`` statement.

        Must only be called from within a :func:`procedure`-decorated method
        (the monitor must be held).  Releases the monitor while blocked and
        re-acquires it before returning.
        """
        ticket = self._locked_by
        if ticket is None:
            raise MonitorError(
                f"wait_until outside a procedure of monitor {self.name}")
        while True:
            if predicate():
                return
            self._release(ticket)
            yield WaitUntil(predicate, description)
            yield from self._acquire(ticket)


def procedure(method: Callable[..., Body]) -> Callable[..., Body]:
    """Mark a generator method as a public monitor procedure.

    The wrapper acquires the monitor before the body runs and releases it
    afterwards (also on exceptions), giving the method monitor semantics.
    """

    @functools.wraps(method)
    def wrapper(self: Monitor, *args: Any, **kwargs: Any) -> Body:
        ticket = _Ticket()
        yield from self._acquire(ticket)
        self._entries += 1
        try:
            result = yield from method(self, *args, **kwargs)
        finally:
            # Skip the release if this activation does not hold the lock —
            # that happens when the activation is abandoned (GeneratorExit)
            # while parked inside wait_until.
            if self._locked_by is ticket:
                self._release(ticket)
        return result

    wrapper.__monitor_procedure__ = True  # type: ignore[attr-defined]
    return wrapper
