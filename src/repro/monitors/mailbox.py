"""The paper's mailbox monitor (Figure 12) and a bounded generalisation.

Figure 12 defines a one-slot mailbox monitor with ``put`` blocking while the
box is full and ``get`` blocking while it is empty.  :class:`Mailbox` is a
faithful transliteration; :class:`BoundedMailbox` generalises the capacity,
and :class:`SharedMailboxBank` packs several boxes behind a *single* monitor
so the serialization penalty the paper warns about ("all access to any
mailbox is serialized") can be demonstrated against the one-monitor-per-
mailbox arrangement the script solution follows.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator

from ..errors import MonitorError
from .monitor import Monitor, procedure

Body = Generator[Any, Any, Any]


class Mailbox(Monitor):
    """One-slot mailbox: the ``TYPE mailbox : MONITOR`` of Figure 12."""

    def __init__(self, name: str = "mailbox"):
        super().__init__(name)
        self.contents: Any = None
        self.status = "empty"

    @procedure
    def put(self, item: Any) -> Body:
        """Deposit ``item``; blocks while the box is full."""
        yield from self.wait_until(lambda: self.status == "empty",
                                   f"{self.name} empty")
        self.contents = item
        self.status = "full"

    @procedure
    def get(self) -> Body:
        """Withdraw the item; blocks while the box is empty."""
        yield from self.wait_until(lambda: self.status == "full",
                                   f"{self.name} full")
        item = self.contents
        self.contents = None
        self.status = "empty"
        return item


class BoundedMailbox(Monitor):
    """A FIFO mailbox with a fixed capacity (capacity 1 matches Figure 12)."""

    def __init__(self, capacity: int, name: str = "bounded-mailbox"):
        if capacity < 1:
            raise MonitorError(f"capacity must be positive, got {capacity}")
        super().__init__(name)
        self.capacity = capacity
        self._items: deque[Any] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @procedure
    def put(self, item: Any) -> Body:
        """Append ``item``; blocks while the box is at capacity."""
        yield from self.wait_until(lambda: len(self._items) < self.capacity,
                                   f"{self.name} has space")
        self._items.append(item)

    @procedure
    def get(self) -> Body:
        """Pop the oldest item; blocks while the box is empty."""
        yield from self.wait_until(lambda: bool(self._items),
                                   f"{self.name} nonempty")
        return self._items.popleft()


class SharedMailboxBank(Monitor):
    """Several one-slot mailboxes behind a *single* monitor.

    This is the paper's first (rejected) monitor implementation of the
    mailbox broadcast: one black box, but every access to any mailbox is
    serialized through the one monitor lock.
    """

    def __init__(self, count: int, name: str = "mailbox-bank"):
        if count < 1:
            raise MonitorError(f"count must be positive, got {count}")
        super().__init__(name)
        self._contents: list[Any] = [None] * count
        self._status = ["empty"] * count

    @property
    def count(self) -> int:
        """Number of mailboxes in the bank."""
        return len(self._status)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self._status):
            raise MonitorError(f"mailbox index {index} out of range")

    @procedure
    def put(self, index: int, item: Any) -> Body:
        """Deposit into box ``index``; serialized with every other access."""
        self._check_index(index)
        yield from self.wait_until(lambda: self._status[index] == "empty",
                                   f"{self.name}[{index}] empty")
        self._contents[index] = item
        self._status[index] = "full"

    @procedure
    def get(self, index: int) -> Body:
        """Withdraw from box ``index``; serialized with every other access."""
        self._check_index(index)
        yield from self.wait_until(lambda: self._status[index] == "full",
                                   f"{self.name}[{index}] full")
        item = self._contents[index]
        self._contents[index] = None
        self._status[index] = "empty"
        return item
