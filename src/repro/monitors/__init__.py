"""Monitor substrate: mutual exclusion, WAIT UNTIL, and mailbox monitors."""

from .mailbox import BoundedMailbox, Mailbox, SharedMailboxBank
from .monitor import Monitor, procedure

__all__ = [
    "BoundedMailbox",
    "Mailbox",
    "Monitor",
    "SharedMailboxBank",
    "procedure",
]
