"""Trace metrics: quantitative summaries of script executions.

Built on the same trace events as the invariant checkers, these helpers
compute the numbers the benchmarks report: per-process time spent inside a
script (the Figure 4 metric), per-performance spans, and communication
counts per performance.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Hashable, Iterable, TYPE_CHECKING, Union

from ..core.performance import RoleAddress
from ..core.policies import Termination
from ..runtime.tracing import EventKind, TraceEvent, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from ..core.instance import ScriptInstance

#: Every helper accepts a live tracer or any recorded event sequence (for
#: example :meth:`~repro.runtime.tracing.Tracer.snapshot`), so analysis
#: never races a cleared or shared tracer.
TraceSource = Union[Tracer, Iterable[TraceEvent]]


def _events(source: TraceSource) -> list[TraceEvent] | tuple[TraceEvent, ...]:
    """Materialize a :data:`TraceSource` into an ordered event sequence."""
    if isinstance(source, Tracer):
        return source.snapshot()
    if isinstance(source, (list, tuple)):
        return source
    return list(source)


def time_in_script(tracer: TraceSource, instance: "ScriptInstance"
                   ) -> dict[Hashable, float]:
    """Virtual time each process spent in the script, request to freeing.

    A process enters the script when it *requests* enrollment and leaves
    when it is freed: at its role's end under immediate termination, at the
    performance's end under delayed termination.  Withdrawn requests
    contribute nothing.
    """
    delayed = instance.script.termination is Termination.DELAYED
    spans: dict[Hashable, float] = {}
    open_request: dict[Hashable, float] = {}
    pending_delayed: dict[str, list[tuple[Hashable, float]]] = {}
    for event in _events(tracer):
        if event.get("instance") != instance.name:
            continue
        if event.kind is EventKind.ENROLL_REQUEST:
            if event.get("withdrawn"):
                open_request.pop(event.process, None)
            else:
                open_request[event.process] = event.time
        elif event.kind is EventKind.ROLE_END:
            started = open_request.pop(event.process, None)
            if started is None:
                continue
            if delayed:
                pending_delayed.setdefault(
                    event.get("performance"), []).append(
                        (event.process, started))
            else:
                spans[event.process] = spans.get(event.process, 0.0) + \
                    (event.time - started)
        elif event.kind is EventKind.PERFORMANCE_END and delayed:
            for process, started in pending_delayed.pop(
                    event.get("performance"), []):
                spans[process] = spans.get(process, 0.0) + \
                    (event.time - started)
    return spans


def performance_spans(tracer: TraceSource, instance_name: str
                      ) -> dict[str, tuple[float, float]]:
    """{performance id: (start time, end time)} for completed performances."""
    starts: dict[str, float] = {}
    spans: dict[str, tuple[float, float]] = {}
    for event in _events(tracer):
        if event.get("instance") != instance_name:
            continue
        performance = event.get("performance")
        if event.kind is EventKind.PERFORMANCE_START:
            starts[performance] = event.time
        elif event.kind is EventKind.PERFORMANCE_END:
            if performance in starts:
                spans[performance] = (starts[performance], event.time)
    return spans


def comm_counts_by_performance(tracer: TraceSource) -> dict[str, int]:
    """Role-addressed rendezvous per performance id."""
    counts: dict[str, int] = defaultdict(int)
    for event in _events(tracer):
        if event.kind is not EventKind.COMM:
            continue
        to = event.get("to")
        if isinstance(to, RoleAddress):
            counts[to.performance_id] += 1
    return dict(counts)


def role_durations(tracer: TraceSource, instance_name: str
                   ) -> dict[tuple[str, Any], float]:
    """{(performance id, role id): body duration in virtual time}."""
    starts: dict[tuple[str, Any], float] = {}
    durations: dict[tuple[str, Any], float] = {}
    for event in _events(tracer):
        if event.get("instance") != instance_name:
            continue
        key = (event.get("performance"), event.get("role"))
        if event.kind is EventKind.ROLE_START:
            starts[key] = event.time
        elif event.kind is EventKind.ROLE_END and key in starts:
            durations[key] = event.time - starts[key]
    return durations
