"""Textual performance timelines.

:func:`render_timeline` turns a recorded trace into a small Gantt-style
chart of performances and role activities — the visual analogue of the
paper's Figure 1 timeline, generated from any run.
"""

from __future__ import annotations

from ..runtime.tracing import Tracer
from .metrics import performance_spans, role_durations
from .properties import performances_in


def render_timeline(tracer: Tracer, instance_name: str,
                    width: int = 60) -> str:
    """Render the instance's performances as an ASCII timeline.

    One row per performance plus one per role activity within it.  Rows
    show ``[====]`` bars positioned on a shared virtual-time axis scaled to
    ``width`` characters.  Instantaneous activities render as ``|``.
    """
    spans = performance_spans(tracer, instance_name)
    durations = role_durations(tracer, instance_name)
    role_starts: dict[tuple[str, object], float] = {}
    for event in tracer.events:
        if event.get("instance") != instance_name:
            continue
        from ..runtime.tracing import EventKind
        if event.kind is EventKind.ROLE_START:
            role_starts[(event.get("performance"),
                         event.get("role"))] = event.time

    if not spans:
        return f"(no completed performances for {instance_name})"

    t_max = max(end for _, end in spans.values())
    t_max = max(t_max, 1e-9)

    def bar(start: float, end: float) -> str:
        left = int(round(start / t_max * (width - 1)))
        right = int(round(end / t_max * (width - 1)))
        if right <= left:
            return " " * left + "|"
        return (" " * left + "[" + "=" * max(0, right - left - 1) + "]")

    lines = [f"timeline of {instance_name} "
             f"(0 .. {t_max:g} virtual time, {width} cols)"]
    for performance in performances_in(tracer.events, instance_name):
        if performance not in spans:
            continue
        start, end = spans[performance]
        lines.append(f"{performance:<24} {bar(start, end)}")
        for (perf, role), duration in sorted(durations.items(),
                                             key=lambda kv: repr(kv[0])):
            if perf != performance:
                continue
            role_start = role_starts.get((perf, role), start)
            label = f"  {role!r}"
            lines.append(f"{label:<24} {bar(role_start, role_start + duration)}")
    return "\n".join(lines)
