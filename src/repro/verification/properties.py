"""Trace invariants: the paper's stated guarantees, checked mechanically.

Each checker inspects a recorded trace and raises
:class:`~repro.errors.VerificationError` with a diagnostic on violation.
The properties are exactly those the paper asserts in Section II:

* **successive activations** (Figure 1): all roles of performance *k*
  terminate before performance *k+1* starts;
* **performance well-formedness**: a role starts after the performance
  starts and after its enrollment is accepted, ends exactly once, and the
  performance ends only after every filled role ended;
* **broadcast delivery**: within one performance, every recipient role
  receives the transmitted value (Figures 3, 4, 6, 8, 12);
* **communication scoping**: role-addressed rendezvous never cross
  performance boundaries.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable

from ..core.performance import RoleAddress
from ..errors import VerificationError
from ..runtime.tracing import EventKind, TraceEvent, Tracer

Events = Iterable[TraceEvent]


def _script_events(events: Events, instance: str | None) -> list[TraceEvent]:
    wanted = {EventKind.ENROLL_REQUEST, EventKind.ENROLL_ACCEPT,
              EventKind.PERFORMANCE_START, EventKind.ROLE_START,
              EventKind.ROLE_END, EventKind.PERFORMANCE_END}
    selected = [e for e in events if e.kind in wanted]
    if instance is not None:
        selected = [e for e in selected if e.get("instance") == instance]
    return selected


def performances_in(events: Events, instance: str | None = None
                    ) -> list[str]:
    """Performance ids appearing in the trace, in start order."""
    return [e.get("performance")
            for e in _script_events(events, instance)
            if e.kind is EventKind.PERFORMANCE_START]


def check_successive_activations(tracer: Tracer,
                                 instance: str | None = None) -> int:
    """All roles of performance *k* end before performance *k+1* starts.

    Returns the number of performances checked.
    """
    events = _script_events(tracer.events, instance)
    open_roles: dict[str, set[Any]] = defaultdict(set)
    current: str | None = None
    checked = 0
    for event in events:
        performance = event.get("performance")
        if event.kind is EventKind.PERFORMANCE_START:
            if current is not None and open_roles[current]:
                raise VerificationError(
                    "successive-activations",
                    f"performance {performance} started while roles "
                    f"{sorted(map(repr, open_roles[current]))} of "
                    f"{current} were still active")
            current = performance
            checked += 1
        elif event.kind is EventKind.ROLE_START:
            open_roles[performance].add(event.get("role"))
        elif event.kind is EventKind.ROLE_END:
            open_roles[performance].discard(event.get("role"))
    return checked


def check_performances_well_formed(tracer: Tracer,
                                   instance: str | None = None) -> int:
    """Role lifecycles nest correctly within their performance."""
    events = _script_events(tracer.events, instance)
    started: set[str] = set()
    ended: set[str] = set()
    accepted: dict[tuple[str, Any], int] = {}
    role_started: set[tuple[str, Any]] = set()
    role_ended: set[tuple[str, Any]] = set()

    for event in events:
        performance = event.get("performance")
        key = (performance, event.get("role"))
        if event.kind is EventKind.PERFORMANCE_START:
            if performance in started:
                raise VerificationError(
                    "well-formed", f"{performance} started twice")
            started.add(performance)
        elif event.kind is EventKind.ENROLL_ACCEPT:
            accepted[key] = event.seq
        elif event.kind is EventKind.ROLE_START:
            if performance not in started:
                raise VerificationError(
                    "well-formed",
                    f"role {event.get('role')!r} started before "
                    f"{performance} started")
            if key not in accepted:
                raise VerificationError(
                    "well-formed",
                    f"role {event.get('role')!r} started without an "
                    f"accepted enrollment in {performance}")
            if key in role_started:
                raise VerificationError(
                    "well-formed",
                    f"role {event.get('role')!r} started twice in "
                    f"{performance}")
            role_started.add(key)
        elif event.kind is EventKind.ROLE_END:
            if key not in role_started:
                raise VerificationError(
                    "well-formed",
                    f"role {event.get('role')!r} ended without starting "
                    f"in {performance}")
            role_ended.add(key)
        elif event.kind is EventKind.PERFORMANCE_END:
            if performance in ended:
                raise VerificationError(
                    "well-formed", f"{performance} ended twice")
            ended.add(performance)
            open_roles = {k for k in role_started - role_ended
                          if k[0] == performance}
            if open_roles:
                raise VerificationError(
                    "well-formed",
                    f"{performance} ended with roles still active: "
                    f"{sorted(repr(r) for _, r in open_roles)}")
    return len(started)


def comm_events_of_performance(tracer: Tracer,
                               performance_id: str) -> list[TraceEvent]:
    """COMM events whose rendezvous is addressed within ``performance_id``."""
    selected = []
    for event in tracer.of_kind(EventKind.COMM):
        to = event.get("to")
        if isinstance(to, RoleAddress) and to.performance_id == performance_id:
            selected.append(event)
    return selected


def check_broadcast_delivery(tracer: Tracer, performance_id: str,
                             value: Any, recipient_family: str = "recipient",
                             count: int | None = None) -> int:
    """Every recipient of the performance received exactly ``value``.

    Returns the number of deliveries verified.
    """
    delivered: dict[Any, Any] = {}
    for event in comm_events_of_performance(tracer, performance_id):
        to = event.get("to")
        role = to.role_id
        if isinstance(role, tuple) and role[0] == recipient_family:
            delivered[role] = event.get("value")
    if count is not None and len(delivered) != count:
        raise VerificationError(
            "broadcast-delivery",
            f"{performance_id}: expected {count} deliveries, "
            f"saw {len(delivered)}")
    wrong = {role: got for role, got in delivered.items() if got != value}
    if wrong:
        raise VerificationError(
            "broadcast-delivery",
            f"{performance_id}: wrong values delivered: {wrong!r}")
    if not delivered:
        raise VerificationError(
            "broadcast-delivery",
            f"{performance_id}: no deliveries to family "
            f"{recipient_family!r} observed")
    return len(delivered)


def check_no_cross_performance_comm(tracer: Tracer) -> int:
    """Role-addressed rendezvous stay within one performance.

    The sender's presented alias and the target must agree on the
    performance id.  Returns the number of role-addressed COMM events.
    """
    checked = 0
    for event in tracer.of_kind(EventKind.COMM):
        to = event.get("to")
        sender_alias = event.get("sender_alias")
        if not isinstance(to, RoleAddress):
            continue
        checked += 1
        if isinstance(sender_alias, RoleAddress) and \
                sender_alias.performance_id != to.performance_id:
            raise VerificationError(
                "performance-scoping",
                f"rendezvous crossed performances: {sender_alias!r} -> "
                f"{to!r}")
    return checked


def check_all(tracer: Tracer, instance: str | None = None) -> dict[str, int]:
    """Run every generic checker; return {property: items checked}."""
    return {
        "successive-activations":
            check_successive_activations(tracer, instance),
        "well-formed": check_performances_well_formed(tracer, instance),
        "performance-scoping": check_no_cross_performance_comm(tracer),
    }
