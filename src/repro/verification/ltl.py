"""Linear temporal logic over finite traces.

Section V of the paper announces the intent "to explore issues of
specification and verification of concurrent programs using scripts".  This
module provides the checking side: LTL formulas evaluated over the finite
event traces the scheduler records, with the standard finite-trace
conventions (``Always`` holds on an empty suffix; ``Next`` is *strong*: it
fails at the end of the trace; ``WeakNext`` succeeds there).

Atoms are arbitrary predicates over :class:`~repro.runtime.TraceEvent`, so
properties range over anything the tracer captures::

    starts = Atom(lambda e: e.kind is EventKind.PERFORMANCE_START)
    ends   = Atom(lambda e: e.kind is EventKind.PERFORMANCE_END)
    # every performance start is eventually followed by its end
    prop = Always(Implies(starts, Eventually(ends)))
    assert evaluate(prop, tracer.events)
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

from ..runtime.tracing import TraceEvent


class Formula:
    """Base class of LTL formulas."""

    __slots__ = ()


@dataclasses.dataclass(frozen=True, slots=True)
class Atom(Formula):
    """A predicate over the current event."""

    predicate: Callable[[TraceEvent], bool]
    name: str = "atom"


@dataclasses.dataclass(frozen=True, slots=True)
class Not(Formula):
    """Logical negation."""

    operand: Formula


@dataclasses.dataclass(frozen=True, slots=True)
class And(Formula):
    """Logical conjunction."""

    left: Formula
    right: Formula


@dataclasses.dataclass(frozen=True, slots=True)
class Or(Formula):
    """Logical disjunction."""

    left: Formula
    right: Formula


@dataclasses.dataclass(frozen=True, slots=True)
class Implies(Formula):
    """Material implication."""

    left: Formula
    right: Formula


@dataclasses.dataclass(frozen=True, slots=True)
class Next(Formula):
    """Strong next: there must *be* a next event, and it must satisfy."""

    operand: Formula


@dataclasses.dataclass(frozen=True, slots=True)
class WeakNext(Formula):
    """Weak next: satisfied at the end of the trace."""

    operand: Formula


@dataclasses.dataclass(frozen=True, slots=True)
class Always(Formula):
    """``[] p``: p holds on every suffix position."""

    operand: Formula


@dataclasses.dataclass(frozen=True, slots=True)
class Eventually(Formula):
    """``<> p``: p holds at some suffix position."""

    operand: Formula


@dataclasses.dataclass(frozen=True, slots=True)
class Until(Formula):
    """``left Until right``: right eventually holds, left holds before."""

    left: Formula
    right: Formula


def evaluate(formula: Formula, events: Sequence[TraceEvent],
             position: int = 0) -> bool:
    """Does ``formula`` hold on the trace suffix starting at ``position``?

    Uses memoised recursion; suitable for the trace sizes the simulator
    produces (thousands of events).
    """
    memo: dict[tuple[int, int], bool] = {}

    def check(node: Formula, at: int) -> bool:
        key = (id(node), at)
        cached = memo.get(key)
        if cached is not None:
            return cached
        result = _check(node, at)
        memo[key] = result
        return result

    def _check(node: Formula, at: int) -> bool:
        if isinstance(node, Atom):
            return at < len(events) and bool(node.predicate(events[at]))
        if isinstance(node, Not):
            return not check(node.operand, at)
        if isinstance(node, And):
            return check(node.left, at) and check(node.right, at)
        if isinstance(node, Or):
            return check(node.left, at) or check(node.right, at)
        if isinstance(node, Implies):
            return (not check(node.left, at)) or check(node.right, at)
        if isinstance(node, Next):
            return at + 1 < len(events) and check(node.operand, at + 1)
        if isinstance(node, WeakNext):
            return at + 1 >= len(events) or check(node.operand, at + 1)
        if isinstance(node, Always):
            return all(check(node.operand, i)
                       for i in range(at, len(events)))
        if isinstance(node, Eventually):
            return any(check(node.operand, i)
                       for i in range(at, len(events)))
        if isinstance(node, Until):
            for i in range(at, len(events)):
                if check(node.right, i):
                    return True
                if not check(node.left, i):
                    return False
            return False
        raise TypeError(f"unknown formula {node!r}")

    return check(formula, position)
