"""Verification layer: trace invariants and finite-trace LTL."""

from .ltl import (Always, And, Atom, Eventually, Formula, Implies, Next, Not,
                  Or, Until, WeakNext, evaluate)
from .metrics import (comm_counts_by_performance, performance_spans,
                      role_durations, time_in_script)
from .timeline import render_timeline
from .properties import (check_all, check_broadcast_delivery,
                         check_no_cross_performance_comm,
                         check_performances_well_formed,
                         check_successive_activations,
                         comm_events_of_performance, performances_in)

__all__ = [
    "Always",
    "And",
    "Atom",
    "Eventually",
    "Formula",
    "Implies",
    "Next",
    "Not",
    "Or",
    "Until",
    "WeakNext",
    "check_all",
    "check_broadcast_delivery",
    "check_no_cross_performance_comm",
    "check_performances_well_formed",
    "check_successive_activations",
    "comm_counts_by_performance",
    "comm_events_of_performance",
    "evaluate",
    "performance_spans",
    "performances_in",
    "render_timeline",
    "role_durations",
    "time_in_script",
]
