"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# Runtime kernel errors
# ---------------------------------------------------------------------------


class RuntimeKernelError(ReproError):
    """Base class for errors raised by the cooperative runtime kernel."""


class DeadlockError(RuntimeKernelError):
    """The system cannot make progress.

    Raised when the ready queue and timer queue are both empty while one or
    more processes remain blocked.  The ``blocked`` attribute describes each
    blocked process and the effect it is waiting on, which makes the error
    message a useful deadlock diagnostic by itself.
    """

    def __init__(self, blocked: dict[object, str]):
        self.blocked = dict(blocked)
        lines = ", ".join(f"{name}: {why}" for name, why in sorted(
            self.blocked.items(), key=lambda kv: str(kv[0])))
        super().__init__(f"deadlock among {len(self.blocked)} process(es): {lines}")


class ProcessFailure(RuntimeKernelError):
    """A process raised an uncaught exception.

    The scheduler wraps the original exception so that the failing process
    can be identified; the original is available as ``__cause__``.
    """

    def __init__(self, process_name: object, original: BaseException):
        self.process_name = process_name
        self.original = original
        super().__init__(f"process {process_name!r} failed: {original!r}")
        self.__cause__ = original


class InvalidEffectError(RuntimeKernelError):
    """A process yielded something the scheduler does not understand."""


class StepLimitExceeded(RuntimeKernelError):
    """The scheduler executed more steps than the configured maximum.

    This usually indicates a livelock (for example, two processes polling
    each other forever) rather than a deadlock.
    """


class UnknownProcessError(RuntimeKernelError):
    """An operation referenced a process name that is not registered."""


class TimeoutError(RuntimeKernelError):  # noqa: A001 - deliberate shadow
    """A communication guarded by a :class:`~repro.runtime.Deadline` expired.

    Carries the process that timed out and the virtual deadline so handlers
    can implement retry loops without re-deriving either.
    """

    def __init__(self, process_name: object, deadline: float,
                 waiting_for: str = ""):
        self.process_name = process_name
        self.deadline = deadline
        self.waiting_for = waiting_for
        detail = f" while {waiting_for}" if waiting_for else ""
        super().__init__(
            f"process {process_name!r} timed out at t={deadline:g}{detail}")


class ProcessInterrupt(RuntimeKernelError):
    """Base class for exceptions thrown *into* a blocked process.

    The scheduler's ``interrupt`` operation cancels whatever the target is
    blocked on and resumes it by raising an instance of this class (or a
    subclass) at its current yield point.  Role contexts and supervisors
    use subclasses to unwind blocked communications when a partner crashes
    or a performance aborts.
    """


# ---------------------------------------------------------------------------
# Script (core) errors
# ---------------------------------------------------------------------------


class ScriptError(ReproError):
    """Base class for errors in the script abstraction layer."""


class ScriptDefinitionError(ScriptError):
    """A script definition is malformed (duplicate roles, bad critical set...)."""


class EnrollmentError(ScriptError):
    """An enrollment request is invalid or cannot be honoured."""


class RoleBindingError(ScriptError):
    """Partner-naming constraints of co-enrolled processes are inconsistent."""


class UnfilledRoleError(ScriptError):
    """A role communicated with an unfilled role outside the critical set.

    Per the paper (Section II, "Critical Role Set"), one resolution strategy
    is that communication with an unfilled role returns a distinguished
    value; when that strategy is disabled, this error is raised instead.
    """


class PerformanceError(ScriptError):
    """A performance lifecycle rule was violated."""


class CrashedPartnerSignal(ProcessInterrupt):
    """A blocked communication's only possible partners have crashed.

    Thrown into a process whose every pending offer targets role addresses
    vacated by a crash.  :class:`~repro.core.RoleContext` catches it and
    applies the script's unfilled-role policy (distinguished value or
    :class:`UnfilledRoleError`); it is not meant to reach user code.
    """

    def __init__(self, addresses: frozenset):
        self.addresses = frozenset(addresses)
        super().__init__(
            f"every possible partner crashed: "
            f"{sorted(map(repr, self.addresses))}")


class DeliveryFailed(ProcessInterrupt):
    """A committed rendezvous could not be delivered within the retry budget.

    Raised by a :class:`~repro.net.transport.NetworkTransport` whose
    per-message :class:`~repro.net.transport.RetrySchedule` is exhausted by
    an active drop window: the message would need more retransmissions than
    the schedule allows.  The scheduler surfaces it like a timeout — thrown
    into *both* parties at their communication yield point, after their
    offers have already left the board — so handlers can retry or give up
    exactly as they would for a :class:`TimeoutError`.
    """

    def __init__(self, sender: object, receiver: object, attempts: int):
        self.sender = sender
        self.receiver = receiver
        self.attempts = attempts
        super().__init__(
            f"delivery from {sender!r} to {receiver!r} failed after "
            f"{attempts} attempt(s)")


class PerformanceAborted(ProcessInterrupt, ScriptError):
    """A performance was aborted because a critical role's process crashed.

    Thrown into every surviving participant whose role body had not yet
    finished.  ``performance_id`` names the aborted performance, ``role``
    the survivor's own role, and ``crashed`` the role(s) whose crash caused
    the abort.  Survivors may catch this to continue with other work; the
    supervisor has already released their role aliases and pending offers.
    """

    def __init__(self, performance_id: str, role: object,
                 crashed: tuple = ()):
        self.performance_id = performance_id
        self.role = role
        self.crashed = tuple(crashed)
        super().__init__(
            f"performance {performance_id} aborted (crashed roles: "
            f"{sorted(map(repr, self.crashed))}); role {role!r} released")


# ---------------------------------------------------------------------------
# Host-language substrate errors
# ---------------------------------------------------------------------------


class CSPError(ReproError):
    """Errors from the CSP substrate (bad guard structure, naming, ...)."""


class AdaError(ReproError):
    """Errors from the Ada-like tasking substrate."""


class MonitorError(ReproError):
    """Errors from the monitor substrate."""


# ---------------------------------------------------------------------------
# Script-language (Section III syntax) errors
# ---------------------------------------------------------------------------


class ScriptLangError(ReproError):
    """Base class for the Pascal-like script language front end."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        location = f" at line {line}" if line is not None else ""
        if line is not None and column is not None:
            location = f" at line {line}, column {column}"
        super().__init__(message + location)


class LexError(ScriptLangError):
    """The script source contains an unrecognised token."""


class ParseError(ScriptLangError):
    """The script source is syntactically invalid."""


class SemanticError(ScriptLangError):
    """The script source is well-formed but semantically invalid."""


class InterpreterError(ScriptLangError):
    """A runtime error occurred while interpreting script-language code."""


# ---------------------------------------------------------------------------
# Fault-injection errors
# ---------------------------------------------------------------------------


class FaultPlanError(ReproError):
    """A fault plan is malformed or cannot be installed as requested."""


class ChaosInvariantError(ReproError):
    """A chaos soak run left residue or violated a semantic invariant.

    The message names the offending seed, so any soak failure is
    reproducible by rerunning that single seed.  ``category`` classifies
    the violation for the fault-space explorer's oracle set:
    ``"residue"`` (kernel state survived the run), ``"semantics"`` (a
    script-level invariant such as abort/delivery correctness),
    ``"liveness"`` (a recovery soak fell short of its target), or the
    generic ``"invariant"``.
    """

    def __init__(self, message: str, category: str = "invariant"):
        self.category = category
        super().__init__(message)


class RecoveryError(ReproError):
    """A recovery policy is misconfigured or was driven illegally."""


# ---------------------------------------------------------------------------
# Durability (journal / resume) errors
# ---------------------------------------------------------------------------


class PersistError(ReproError):
    """Base class for the durable-journal subsystem."""


class JournalError(PersistError):
    """A journal file is structurally unusable (bad magic, unreadable
    header, unsupported version).

    A *torn tail* — trailing bytes that fail the length/CRC frame check —
    is deliberately **not** an error: crash-consistency means a truncated
    final frame is expected after a kill, so readers drop it and report
    ``torn`` instead of raising.
    """


class ResumeMismatch(PersistError):
    """A resumed run diverged from its journal.

    Raised when the journal's header does not match the resume
    configuration (different seed, scenario, or options) or when a
    replayed scheduler decision differs from the recorded frame.  Carries
    ``frame_index`` plus the expected and observed records, so the first
    divergence is a precise reproduction recipe.
    """

    def __init__(self, reason: str, frame_index: int | None = None,
                 expected: object = None, observed: object = None):
        self.reason = reason
        self.frame_index = frame_index
        self.expected = expected
        self.observed = observed
        at = f" at frame {frame_index}" if frame_index is not None else ""
        detail = ""
        if expected is not None or observed is not None:
            detail = f" (expected {expected!r}, observed {observed!r})"
        super().__init__(f"resume mismatch{at}: {reason}{detail}")


# ---------------------------------------------------------------------------
# Verification errors
# ---------------------------------------------------------------------------


class VerificationError(ReproError):
    """A checked property does not hold on the observed trace."""

    def __init__(self, property_name: str, detail: str):
        self.property_name = property_name
        self.detail = detail
        super().__init__(f"property {property_name!r} violated: {detail}")
