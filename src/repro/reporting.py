"""Shared CLI report formatting: one layout for every repro report.

Every report-style CLI command renders as a one-line header followed by
aligned ``label  value`` rows.  The layout started life in the chaos
subsystem (:mod:`repro.faults.reporting`), was reused by the recovery and
exploration reports, and — with the parameterized verifier — is now also
the layout of ``repro analyze`` / ``repro verify`` summaries, so it lives
at the package top level.  :mod:`repro.faults.reporting` re-exports it
for compatibility.
"""

from __future__ import annotations

from typing import Any, Iterable

#: Width the row labels are padded to; chosen so the historical reports'
#: output is byte-identical ("  outcomes      ..." etc.).
LABEL_WIDTH = 12


def kv_lines(header: str,
             rows: Iterable[tuple[str, Any]]) -> list[str]:
    """Render ``header`` plus one aligned detail line per ``(label, value)``."""
    lines = [header]
    for label, value in rows:
        lines.append(f"  {label:<{LABEL_WIDTH}}  {value}")
    return lines
