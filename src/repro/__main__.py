"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``figures``            — list the paper's figures shipped as sources;
* ``show <figure>``      — print a figure's script-language source;
* ``check <file>``       — parse and semantically check a script file;
* ``analyze <files>``    — full static analysis: index-aware communication
  graph, guaranteed-deadlock detection, critical-set feasibility; stable
  ``SCRnnn`` diagnostic codes, ``--json`` for deterministic JSON,
  ``--strict`` to fail on warnings, ``--figures`` for the paper corpus;
* ``lint <file>``        — legacy communication lint (subsumed by
  ``analyze``; kept for compatibility);
* ``format <file>``      — pretty-print a script file (round-trippable);
* ``demo broadcast``     — run a broadcast and print the delivery table;
* ``demo lock``          — run the Figure 5 lock-manager workload;
* ``demo election``      — run a ring leader election;
* ``chaos <script>``     — soak a script under seeded fault injection
  (``--recover`` switches to the recovery soak: crashed processes are
  restarted with backoff and aborted performances retried; ``--kill9``
  SIGKILLs a journaled subprocess mid-run and — with ``--resume`` —
  proves the resumed run commits the identical rendezvous sequence;
  ``--explore`` switches to systematic fault-space exploration: fault
  schedules anchored at a probe run's injection points are generated
  under ``--budget``, each run is judged by the ``--oracle`` set, and
  any failure is delta-debugged to a minimal counterexample JSON that
  ``--replay-plan`` re-executes; ``--describe-plan`` prints the fault
  plan a plan-less run of the seed would install);
* ``replay <journal>``   — resume a durable performance journal:
  deterministically re-run its recorded scenario, validate every frame,
  and continue past the crash point;
* ``trace <scenario>``   — run an instrumented scenario and export its
  span tree as Chrome trace-event JSON (plus optional JSONL);
* ``stats <scenario>``   — run a scenario and print its metrics summary
  (``stats analysis`` summarizes a static-analysis run over the figures).

Exit codes for the file-checking commands (``check``/``analyze``/
``lint``/``format``): 0 clean, 1 findings, 2 usage or parse/semantic
error.

The CLI is a thin shell over the library; every command is available
programmatically (see the modules referenced in each handler).
"""

from __future__ import annotations

import argparse
import sys

from .errors import ScriptLangError
from .lang import (analyze, format_program, lint_communications,
                   parse_script)
from .lang import figures as figure_sources

FIGURES = {
    "fig3": ("Figure 3: synchronized star broadcast",
             figure_sources.FIGURE3_STAR_BROADCAST),
    "fig4": ("Figure 4: pipeline broadcast",
             figure_sources.FIGURE4_PIPELINE_BROADCAST),
    "fig5": ("Figure 5: database lock manager",
             figure_sources.FIGURE5_DATABASE),
}


def cmd_figures(_args: argparse.Namespace) -> int:
    """List the shipped figure sources."""
    for key, (title, _source) in FIGURES.items():
        print(f"{key:<6} {title}")
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    """Print a figure's script-language source."""
    entry = FIGURES.get(args.figure)
    if entry is None:
        print(f"unknown figure {args.figure!r}; try: {', '.join(FIGURES)}",
              file=sys.stderr)
        return 2
    print(entry[1].strip())
    return 0


def _load_program(path: str):
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return parse_script(source)


def cmd_check(args: argparse.Namespace) -> int:
    """Parse and semantically check a script file."""
    try:
        program = _load_program(args.file)
        info = analyze(program)
    except ScriptLangError as error:
        print(f"{args.file}: {error}", file=sys.stderr)
        return 2
    roles = []
    for role in program.roles:
        if role.is_family:
            low, high = info.family_bounds[role.name]
            roles.append(f"{role.name}[{low}..{high}]")
        else:
            roles.append(role.name)
    print(f"{args.file}: SCRIPT {program.name} OK "
          f"({program.initiation.lower()}/{program.termination.lower()}; "
          f"roles: {', '.join(roles)})")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the (legacy) communication lint over a script file.

    Subsumed by ``analyze``: the historic warning strings come from the
    full analyzer's SCR001/SCR002 findings.  ``--json`` emits the full
    structured report instead; ``--strict`` fails on *any* analyzer
    finding rather than only the legacy warnings.
    """
    try:
        program = _load_program(args.file)
        analyze(program)
    except ScriptLangError as error:
        print(f"{args.file}: {error}", file=sys.stderr)
        return 2
    from .analysis import analyze_program, dump_report_json
    report = analyze_program(program, label=args.file)
    warnings = lint_communications(program)
    if args.json:
        print(dump_report_json([report]))
    else:
        for warning in warnings:
            print(f"{args.file}: {warning}")
        if not warnings:
            print(f"{args.file}: no communication warnings")
    if warnings or (args.strict and report.findings):
        return 1
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Run the full static analysis over script files."""
    from .analysis import analyze_source, dump_report_json, figure_corpus
    from .analysis.diagnostics import summary_lines
    parameterized = getattr(args, "parameterized", False) \
        or args.command == "verify"
    targets: list[tuple[str, str]] = []
    if args.figures:
        targets.extend(figure_corpus())
    for path in args.files:
        try:
            with open(path, encoding="utf-8") as handle:
                targets.append((path, handle.read()))
        except OSError as error:
            print(f"{path}: {error}", file=sys.stderr)
            return 2
    if not targets:
        print("analyze: no inputs (pass script files and/or --figures)",
              file=sys.stderr)
        return 2
    reports = []
    for label, source in targets:
        try:
            reports.append(analyze_source(
                source, label=label, parameterized=parameterized,
                max_states=getattr(args, "max_states", None)))
        except ScriptLangError as error:
            print(f"{label}: {error}", file=sys.stderr)
            return 2
    errors = sum(report.error_count for report in reports)
    warnings = sum(report.warning_count for report in reports)
    if args.json:
        print(dump_report_json(reports))
    else:
        for report in reports:
            if report.clean:
                verdict = ""
                if report.parameterized is not None:
                    covers = report.parameterized["covers"] or \
                        report.parameterized["strategy"]
                    verdict = f" (proved safe: {covers})"
                print(f"{report.label}: clean{verdict}")
            else:
                for line in report.lines():
                    print(line)
        for line in summary_lines(reports):
            print(line)
    if errors or (args.strict and warnings):
        return 1
    return 0


def cmd_format(args: argparse.Namespace) -> int:
    """Pretty-print a script file."""
    try:
        program = _load_program(args.file)
    except ScriptLangError as error:
        print(f"{args.file}: {error}", file=sys.stderr)
        return 2
    print(format_program(program))
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    """Run one of the built-in demo scenarios."""
    if args.scenario == "broadcast":
        from .scripts import run_broadcast
        received = run_broadcast(args.n, args.strategy, value="demo",
                                 seed=args.seed)
        print(f"{args.strategy} broadcast to {args.n} recipients:")
        for index, value in sorted(received.items()):
            print(f"  recipient[{index}] <- {value!r}")
        return 0
    if args.scenario == "lock":
        from .runtime import Scheduler
        from .scripts import ONE_READ_ALL_WRITE, ReplicatedLockService
        scheduler = Scheduler(seed=args.seed)
        service = ReplicatedLockService(scheduler, k=3,
                                        strategy=ONE_READ_ALL_WRITE)
        ops = [("alice", "reader", "x", "lock"),
               ("bob", "writer", "x", "lock"),
               ("alice", "reader", "x", "release"),
               ("bob", "writer", "x", "lock")]
        service.expect_operations(len(ops))
        service.spawn_managers()

        def driver():
            lines = []
            for owner, role, item, op in ops:
                status = yield from service.request(role, owner, item, op)
                lines.append((owner, role, op, item, status))
            return lines

        scheduler.spawn("driver", driver())
        result = scheduler.run()
        print("lock manager (k=3, one lock to read, k locks to write):")
        for owner, role, op, item, status in result.results["driver"]:
            print(f"  {owner:<6} {role:<7} {op:<8} {item} -> {status}")
        return 0
    if args.scenario == "election":
        from .scripts import run_election
        ids = list(range(1, args.n + 1))
        ids[args.seed % args.n], ids[-1] = ids[-1], ids[args.seed % args.n]
        leaders = run_election(ids, seed=args.seed)
        print(f"ring election over ids {ids}: leader {max(ids)} "
              f"(seen by all {len(leaders)} stations: "
              f"{set(leaders.values()) == {max(ids)}})")
        return 0
    print(f"unknown demo {args.scenario!r}", file=sys.stderr)
    return 2


def cmd_chaos(args: argparse.Namespace) -> int:
    """Soak or explore a script under deterministic fault injection."""
    if args.describe_plan:
        return _chaos_describe_plan(args)
    if args.kill9:
        return _chaos_kill9(args)
    if args.replay_plan:
        return _chaos_replay_plan(args)
    if args.explore:
        return _chaos_explore(args)
    if args.recover:
        from .recovery import recover_soak, verify_recover_determinism
        if args.script != "broadcast":
            print("chaos --recover supports only the broadcast script",
                  file=sys.stderr)
            return 2
        options = {}
        if args.max_restarts is not None:
            # A forced (sub-covering) cap makes quarantine reachable;
            # report it instead of crashing mid-soak.
            options.update(max_restarts=args.max_restarts, strict=False)
        report = recover_soak(runs=args.runs, seed=args.seed, **options)
        for line in report.lines():
            print(line)
        if args.trace_out:
            _write_trace(args.trace_out, report.base_trace, args.seed)
        if args.verify:
            same = verify_recover_determinism(seed=args.seed, **options)
            print(f"  determinism   seed {args.seed} replayed "
                  f"{'identically' if same else 'DIFFERENTLY'}")
            if not same:
                return 1
        if report.quarantined:
            # Quarantine leaves a process permanently down: that is a
            # recovery *failure*, and the soak must not exit clean.
            print(f"  FAILED        {report.quarantined} quarantined "
                  f"name(s) never recovered", file=sys.stderr)
            return 1
        return 0
    from .faults import SCRIPTS, soak, verify_determinism
    if args.script not in SCRIPTS:
        print(f"unknown chaos script {args.script!r}; try: "
              f"{', '.join(SCRIPTS)}", file=sys.stderr)
        return 2
    report = soak(args.script, runs=args.runs, seed=args.seed)
    for line in report.lines():
        print(line)
    if args.trace_out:
        _write_trace(args.trace_out, report.base_trace, args.seed)
    if args.verify:
        same = verify_determinism(args.script, seed=args.seed)
        print(f"  determinism   seed {args.seed} replayed "
              f"{'identically' if same else 'DIFFERENTLY'}")
        if not same:
            return 1
    return 0


def _write_trace(path: str, trace: str, seed: int) -> None:
    """Write a base seed's formatted trace to ``path`` (CI artifact)."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(trace + "\n")
    print(f"  trace         wrote base seed {seed} to {path}")


def _chaos_oracles(args: argparse.Namespace) -> tuple[str, ...] | None:
    """Resolve repeated ``--oracle`` flags (``all`` or None → defaults)."""
    if not args.oracle or "all" in args.oracle:
        return None
    # Preserve first-mention order but drop repeats.
    return tuple(dict.fromkeys(args.oracle))


def _chaos_describe_plan(args: argparse.Namespace) -> int:
    """``chaos --describe-plan``: print the seed's implied fault plan."""
    from .faults import SCRIPTS, JournalCorruptionPlan
    if args.recover:
        from .recovery import recover_plan_for_seed
        plan = recover_plan_for_seed(args.seed)
        name = "recover (broadcast)"
    else:
        if args.script not in SCRIPTS:
            print(f"unknown chaos script {args.script!r}; try: "
                  f"{', '.join(SCRIPTS)}", file=sys.stderr)
            return 2
        from .faults import plan_for_seed
        plan = plan_for_seed(args.script, args.seed)
        name = args.script
    print(f"fault plan: {name}, seed {args.seed}")
    lines = plan.describe()
    for line in lines:
        print(f"  {line}")
    if not lines:
        print("  (no fault events)")
    corruption = JournalCorruptionPlan.random(args.seed)
    print("journal corruption (same seed, --kill9 --torn territory):")
    print(f"  {corruption.describe()}")
    return 0


def _chaos_explore(args: argparse.Namespace) -> int:
    """``chaos --explore``: systematic fault-space search + shrinking."""
    import json

    from .faults import SCRIPTS
    from .faults.explore import explore, record_exploration
    from .obs import MetricsRegistry
    if args.script not in SCRIPTS:
        print(f"unknown chaos script {args.script!r}; try: "
              f"{', '.join(SCRIPTS)}", file=sys.stderr)
        return 2
    metrics = MetricsRegistry()
    report = explore(args.script, seed=args.seed, budget=args.budget,
                     oracles=_chaos_oracles(args), minimize=args.minimize)
    record_exploration(report, metrics)
    for line in report.lines():
        print(line)
    if args.trace_out:
        _write_trace(args.trace_out, report.base_trace, args.seed)
    if report.counterexample is not None:
        ce = report.counterexample
        out = args.plan_out or f"counterexample-{args.script}.json"
        with open(out, "w", encoding="utf-8", newline="") as handle:
            handle.write(json.dumps(ce.to_jsonable(), sort_keys=True,
                                    indent=2) + "\n")
        print(f"  plan          wrote {out}")
        print(f"  repro         {ce.repro_command(out)}")
        return 1
    return 0


def _chaos_replay_plan(args: argparse.Namespace) -> int:
    """``chaos --replay-plan``: re-execute a saved counterexample."""
    from .errors import ChaosInvariantError
    from .faults.explore import check_saved_schedule
    try:
        check = check_saved_schedule(args.replay_plan,
                                     oracles=_chaos_oracles(args))
    except (ChaosInvariantError, OSError, ValueError) as error:
        print(f"replay-plan: {error}", file=sys.stderr)
        return 2
    for line in check.lines():
        print(line)
    return 1 if check.reproduced else 0


def _chaos_kill9(args: argparse.Namespace) -> int:
    """``chaos --kill9``: SIGKILL a journaled subprocess, then resume."""
    import tempfile

    from .errors import PersistError, ResumeMismatch
    from .persist import kill9_resume
    if not args.resume:
        print("chaos --kill9 requires --resume (the kill alone proves "
              "nothing; resuming the journal is the point)",
              file=sys.stderr)
        return 2
    with tempfile.TemporaryDirectory(prefix="repro-kill9-") as tmp:
        work_dir = args.journal or tmp
        try:
            report = kill9_resume(args.script, args.seed, work_dir,
                                  torn=args.torn)
        except (PersistError, ResumeMismatch) as error:
            print(f"kill9: {error}", file=sys.stderr)
            return 1
        for line in report.lines():
            print(line)
        return 0 if report.ok else 1


def cmd_replay(args: argparse.Namespace) -> int:
    """Resume a durable journal: validate its frames, then continue."""
    from .errors import PersistError, ResumeMismatch
    try:
        from .persist import resume
        report = resume(args.journal)
    except (PersistError, ResumeMismatch) as error:
        print(f"replay: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"replay: {error}", file=sys.stderr)
        return 2
    for line in report.lines():
        print(line)
    return 0


def cmd_kill9_child(args: argparse.Namespace) -> int:
    """Hidden harness verb: run journaled, then SIGKILL ourselves.

    Only ever invoked by :func:`repro.persist.chaos.kill9_resume`; exits
    by SIGKILL under normal operation, or with the sentinel code when the
    run finished before the kill point.
    """
    import json

    from .persist import run_kill9_child
    options = json.loads(args.options) if args.options else None
    return run_kill9_child(args.script, args.seed, args.journal,
                           args.kill_after, options=options)


def cmd_trace(args: argparse.Namespace) -> int:
    """Run a scenario and export its span tree (Chrome trace + JSONL)."""
    from .obs import (build_spans, dump_chrome_trace, dump_spans_jsonl,
                      run_scenario, span_tree_lines)
    run = run_scenario(args.scenario, seed=args.seed, n=args.n)
    spans = build_spans(run.scheduler.tracer.snapshot())
    out = args.out or f"trace-{args.scenario}.json"
    with open(out, "w", encoding="utf-8", newline="") as handle:
        handle.write(dump_chrome_trace(spans))
    if args.jsonl:
        with open(args.jsonl, "w", encoding="utf-8", newline="") as handle:
            handle.write(dump_spans_jsonl(spans))
    print(f"{run.name} (seed {args.seed}): {run.headline}")
    print(f"wrote {len(spans)} spans to {out}"
          + (f" and {args.jsonl}" if args.jsonl else ""))
    print("open in Perfetto (https://ui.perfetto.dev) or chrome://tracing")
    if args.tree:
        print()
        for line in span_tree_lines(spans):
            print(line)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Run a scenario and print its metrics-registry summary."""
    import json

    from .obs import jsonable, run_scenario
    if args.scenario == "analysis":
        from .analysis import analyze_corpus, record_analysis
        # Parameterized verification included: the registry carries the
        # model checker's state-space counters alongside the finding
        # counts (analysis_param_*).
        reports = analyze_corpus(parameterized=True)
        registry = record_analysis(reports)
        if args.json:
            print(json.dumps(jsonable(registry.to_dict()), sort_keys=True,
                             indent=2))
            return 0
        print(f"analysis: {len(reports)} figure source(s) analyzed")
        print()
        print(registry.render_text())
        return 0
    run = run_scenario(args.scenario, seed=args.seed, n=args.n)
    if args.json:
        print(json.dumps(jsonable(run.metrics.to_dict()), sort_keys=True,
                         indent=2))
        return 0
    print(f"{run.name} (seed {args.seed}): {run.headline}")
    print()
    for line in run.metrics.summary_lines():
        print(line)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile a scenario's kernel hot path, or diff two saved profiles."""
    import json

    from .obs import (build_spans, diff_attributions, jsonable,
                      merge_chrome_events, profile_scenario, to_chrome_trace)
    if args.diff:
        old_path, new_path = args.diff
        with open(old_path, encoding="utf-8") as handle:
            old = json.load(handle)
        with open(new_path, encoding="utf-8") as handle:
            new = json.load(handle)
        lines = diff_attributions(old, new)
        if not lines:
            print(f"no comparable wall attributions between "
                  f"{old_path} and {new_path}")
            return 0
        for line in lines:
            print(line)
        return 0
    if args.scenario is None:
        print("error: a scenario is required unless --diff is given",
              file=sys.stderr)
        return 2
    run, report = profile_scenario(args.scenario, seed=args.seed, n=args.n,
                                   deterministic=args.deterministic)
    # --deterministic makes even the wall section byte-stable, so include
    # it then too: the saved JSON stays diffable without sacrificing the
    # stability guarantee.
    wall = args.wall or args.deterministic
    if args.json:
        with open(args.json, "w", encoding="utf-8", newline="") as handle:
            handle.write(json.dumps(jsonable(report.to_dict(wall=wall)),
                                    sort_keys=True, indent=2) + "\n")
    if args.flame:
        with open(args.flame, "w", encoding="utf-8", newline="") as handle:
            handle.write("\n".join(report.flame_lines()) + "\n")
    if args.chrome:
        spans = build_spans(run.scheduler.tracer.snapshot())
        document = to_chrome_trace(spans)
        merged = merge_chrome_events(document, report.chrome_events())
        with open(args.chrome, "w", encoding="utf-8", newline="") as handle:
            handle.write(merged)
    print(f"{run.name} (seed {args.seed}, n {args.n}): {run.headline}")
    print()
    for line in report.summary_lines():
        print(line)
    written = [path for path in (args.json, args.flame, args.chrome) if path]
    if written:
        print()
        print(f"wrote {', '.join(written)}")
        if args.flame:
            print("flamegraph: drop the file on "
                  "https://www.speedscope.app")
        if args.chrome:
            print("trace: open in Perfetto (https://ui.perfetto.dev)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scripts (Francez & Hailpern, PODC 1983) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("figures", help="list shipped figure sources"
                   ).set_defaults(handler=cmd_figures)

    show = sub.add_parser("show", help="print a figure's source")
    show.add_argument("figure", choices=sorted(FIGURES))
    show.set_defaults(handler=cmd_show)

    check = sub.add_parser("check", help="parse + check a script file")
    check.add_argument("file")
    check.set_defaults(handler=cmd_check)

    lint = sub.add_parser("lint", help="legacy communication lint "
                                       "(subsumed by analyze)")
    lint.add_argument("file")
    lint.add_argument("--strict", action="store_true",
                      help="fail on any analyzer finding, not only the "
                           "legacy warnings")
    lint.add_argument("--json", action="store_true",
                      help="emit the full structured report as JSON")
    lint.set_defaults(handler=cmd_lint)

    analyze_cmd = sub.add_parser(
        "analyze", help="full static analysis of script files")
    analyze_cmd.add_argument("files", nargs="*",
                             help="script-language source files")
    analyze_cmd.add_argument("--figures", action="store_true",
                             help="also analyze the shipped paper figures")
    analyze_cmd.add_argument("--strict", action="store_true",
                             help="exit nonzero on warnings, not only "
                                  "errors")
    analyze_cmd.add_argument("--json", action="store_true",
                             help="emit deterministic diagnostics JSON")
    analyze_cmd.add_argument("--parameterized", action="store_true",
                             help="also run the counter-abstraction model "
                                  "checker: prove deadlock freedom and "
                                  "critical-set liveness for every family "
                                  "size (SCR010/SCR011/SCR012)")
    analyze_cmd.add_argument("--max-states", type=int, default=None,
                             help="state bound before the parameterized "
                                  "checker reports inconclusive")
    analyze_cmd.set_defaults(handler=cmd_analyze)

    verify = sub.add_parser(
        "verify", help="parameterized verification of script files "
                       "(analyze --parameterized)")
    verify.add_argument("files", nargs="*",
                        help="script-language source files")
    verify.add_argument("--figures", action="store_true",
                        help="also verify the shipped paper figures")
    verify.add_argument("--strict", action="store_true",
                        help="exit nonzero on warnings, not only errors")
    verify.add_argument("--json", action="store_true",
                        help="emit deterministic diagnostics JSON")
    verify.add_argument("--max-states", type=int, default=None,
                        help="state bound before the checker reports "
                             "inconclusive")
    verify.set_defaults(handler=cmd_analyze)

    fmt = sub.add_parser("format", help="pretty-print a script file")
    fmt.add_argument("file")
    fmt.set_defaults(handler=cmd_format)

    demo = sub.add_parser("demo", help="run a built-in scenario")
    demo.add_argument("scenario", choices=["broadcast", "lock", "election"])
    demo.add_argument("--n", type=int, default=5)
    demo.add_argument("--strategy", default="star",
                      choices=["star", "star_nondet", "pipeline", "tree"])
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(handler=cmd_demo)

    chaos = sub.add_parser("chaos", help="chaos-soak a script under "
                                         "seeded fault injection")
    chaos.add_argument("script", nargs="?", default="broadcast",
                       choices=["broadcast", "lock", "chatroom"])
    chaos.add_argument("--runs", type=int, default=100,
                       help="number of seeded runs (default 100)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="base seed; run i uses seed+i")
    chaos.add_argument("--explore", action="store_true",
                       help="systematic fault-space exploration: generate "
                            "schedules at the probe run's injection "
                            "points, judge each run with the oracle set, "
                            "shrink any failure to a minimal "
                            "counterexample (exits 1 on counterexample)")
    chaos.add_argument("--budget", type=int, default=100,
                       help="with --explore: number of schedules to "
                            "examine (default 100)")
    chaos.add_argument("--oracle", action="append", default=None,
                       choices=["residue", "abort", "convergence",
                                "replay", "all"],
                       help="with --explore/--replay-plan: enable an "
                            "oracle (repeatable; default: all)")
    chaos.add_argument("--minimize", action="store_true", default=True,
                       help="with --explore: delta-debug the first "
                            "failure to a locally minimal schedule "
                            "(default: on)")
    chaos.add_argument("--no-minimize", action="store_false",
                       dest="minimize",
                       help="with --explore: keep the first failing "
                            "schedule as found")
    chaos.add_argument("--plan-out", default=None, metavar="PATH",
                       help="with --explore: where to write the "
                            "counterexample JSON (default "
                            "counterexample-<script>.json)")
    chaos.add_argument("--replay-plan", default=None, metavar="PATH",
                       help="re-execute a saved counterexample JSON and "
                            "report whether it still fails (exits 1 when "
                            "it reproduces)")
    chaos.add_argument("--describe-plan", action="store_true",
                       help="print the fault plan a plan-less run of "
                            "the seed would install, plus the seed's "
                            "journal-corruption recipe, and exit")
    chaos.add_argument("--recover", action="store_true",
                       help="recovery mode: restart crashed processes and "
                            "retry aborted performances (broadcast only; "
                            "default 25 runs is advisable via --runs)")
    chaos.add_argument("--trace-out", default=None,
                       help="with --recover: write the base seed's "
                            "formatted trace to this path (CI artifact)")
    chaos.add_argument("--verify", action="store_true",
                       help="also replay the base seed twice and compare "
                            "traces")
    chaos.add_argument("--max-restarts", type=int, default=None,
                       help="with --recover: force the restart intensity "
                            "cap (a cap below the crash plan's coverage "
                            "deterministically exercises quarantine, "
                            "which exits nonzero)")
    chaos.add_argument("--kill9", action="store_true",
                       help="SIGKILL a journaled subprocess run of the "
                            "base seed mid-performance (use with "
                            "--resume)")
    chaos.add_argument("--resume", action="store_true",
                       help="with --kill9: resume the crashed journal "
                            "and verify the committed-rendezvous "
                            "sequence matches an uninterrupted run")
    chaos.add_argument("--torn", action="store_true",
                       help="with --kill9: additionally tear the "
                            "journal's final frame before resuming")
    chaos.add_argument("--journal", default=None,
                       help="with --kill9: directory to keep the oracle "
                            "and crash journals in (default: a temp dir)")
    chaos.set_defaults(handler=cmd_chaos)

    replay = sub.add_parser("replay", help="resume a durable performance "
                                           "journal and validate it")
    replay.add_argument("journal", help="path to a .jrnl file written by "
                                        "a journaled chaos run")
    replay.set_defaults(handler=cmd_replay)

    # Hidden: the kill -9 harness's child half (dies by SIGKILL).
    child = sub.add_parser("_kill9-child")
    child.add_argument("script",
                       choices=["broadcast", "lock", "chatroom", "recover"])
    child.add_argument("--seed", type=int, required=True)
    child.add_argument("--journal", required=True)
    child.add_argument("--kill-after", type=int, required=True,
                       dest="kill_after")
    child.add_argument("--options", default=None)
    child.set_defaults(handler=cmd_kill9_child)

    from .obs.scenarios import SCENARIOS

    trace = sub.add_parser("trace", help="run a scenario and export its "
                                         "span tree (Chrome trace JSON)")
    trace.add_argument("scenario", choices=SCENARIOS)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--n", type=int, default=5,
                       help="scenario size (recipients/stations)")
    trace.add_argument("--out", default=None,
                       help="Chrome trace output path "
                            "(default trace-<scenario>.json)")
    trace.add_argument("--jsonl", default=None,
                       help="also dump spans as JSONL to this path")
    trace.add_argument("--tree", action="store_true",
                       help="print the span tree to stdout as well")
    trace.set_defaults(handler=cmd_trace)

    stats = sub.add_parser("stats", help="run a scenario and print its "
                                         "metrics summary")
    stats.add_argument("scenario", choices=[*SCENARIOS, "analysis"])
    stats.add_argument("--seed", type=int, default=0)
    stats.add_argument("--n", type=int, default=5,
                       help="scenario size (recipients/stations)")
    stats.add_argument("--json", action="store_true",
                       help="emit the summary as JSON instead of text")
    stats.set_defaults(handler=cmd_stats)

    profile = sub.add_parser(
        "profile", help="profile a scenario's kernel hot path (phase "
                        "attribution, flamegraph, Chrome trace)")
    profile.add_argument("scenario", nargs="?", choices=SCENARIOS,
                         help="scenario to profile (omit with --diff)")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--n", type=int, default=5,
                         help="scenario size (recipients/stations)")
    profile.add_argument("--json", default=None, metavar="PATH",
                         help="write the report as JSON (deterministic "
                              "counters only unless --wall)")
    profile.add_argument("--wall", action="store_true",
                         help="include measured wall-clock attribution "
                              "in the JSON report")
    profile.add_argument("--flame", default=None, metavar="PATH",
                         help="write collapsed-stack flamegraph lines "
                              "(speedscope / flamegraph.pl)")
    profile.add_argument("--chrome", default=None, metavar="PATH",
                         help="write the span trace with the profiler "
                              "lane merged in (Perfetto)")
    profile.add_argument("--deterministic", action="store_true",
                         help="use a tick clock: every export becomes "
                              "byte-stable for the seed")
    profile.add_argument("--diff", nargs=2, metavar=("OLD", "NEW"),
                         default=None,
                         help="explain a regression: compare two saved "
                              "profile JSON files instead of running")
    profile.set_defaults(handler=cmd_profile)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
