"""CSP communication commands and guarded commands.

This module models the CSP fragment the paper relies on (Hoare 1978):

* output commands ``P!expr`` — :func:`out`;
* input commands ``P?x`` — :func:`inp`;
* guarded alternative commands ``[g1 -> S1 [] g2 -> S2 ...]`` —
  :func:`alternative`;
* guarded repetitive commands ``*[...]`` — :func:`repetitive`.

A guard has an optional boolean part and an optional communication part.
Following the original CSP, input commands may appear in guards; following
the Francez extension the paper cites ([2]), output commands may appear in
guards as well (classic CSP forbade this), and input commands may leave the
partner unnamed.

Nondeterministic selection among simultaneously enabled guards is resolved
by the scheduler's seeded RNG, with one documented refinement: a purely
boolean guard (no communication part) is taken only when no communication
guard can commit *immediately*; otherwise purely boolean guards would starve
communication forever.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Generator, Hashable, Iterable, Sequence

from ..errors import CSPError
from ..runtime import (ELSE_BRANCH, Choice, Delay, QueryProcesses, Receive,
                       Select, Send)

#: Result type of :func:`alternative`: (guard index, received value or None).
AltResult = tuple[int, Any]

#: Virtual-time polling interval for the distributed termination convention.
_DTC_POLL_INTERVAL = 1.0


def out(destination: Hashable, value: Any, tag: Hashable = None) -> Send:
    """The CSP output command ``destination!value``."""
    return Send(destination, value, tag=tag)


def inp(source: Hashable | None = None, tag: Hashable = None) -> Receive:
    """The CSP input command ``source?x``.

    ``source=None`` is the unnamed-partner extension: accept from anyone.
    """
    return Receive(source, tag=tag)


@dataclasses.dataclass(frozen=True, slots=True)
class Guard:
    """One guarded clause: boolean part, communication part, optional action.

    ``action`` is invoked with the received value (or ``None`` for a send)
    when the clause is selected inside :func:`repetitive`; it may be a plain
    callable or a generator function whose effects are run in-line.
    """

    cond: bool = True
    comm: Send | Receive | None = None
    action: Callable[[Any], Any] | None = None


def guard(cond: bool = True, comm: Send | Receive | None = None,
          action: Callable[[Any], Any] | None = None) -> Guard:
    """Convenience constructor for :class:`Guard`."""
    return Guard(bool(cond), comm, action)


def alternative(guards: Sequence[Guard],
                immediate: bool = False) -> Generator[Any, Any, AltResult]:
    """Execute a CSP alternative command over ``guards``.

    Returns ``(index, value)`` where ``index`` is the position of the chosen
    guard in ``guards`` and ``value`` is the received value (``None`` for
    send guards and purely boolean guards).

    Raises :class:`~repro.errors.CSPError` if no guard is enabled — the CSP
    alternative command *fails* in that situation.

    With ``immediate=True`` the command never blocks; if nothing can commit
    at once the result is ``(ELSE_BRANCH, None)``.
    """
    guards = list(guards)
    enabled = [(i, g) for i, g in enumerate(guards) if g.cond]
    if not enabled:
        raise CSPError("alternative command fails: no guard is enabled")

    comm_clauses = [(i, g.comm) for i, g in enabled if g.comm is not None]
    pure_clauses = [i for i, g in enabled if g.comm is None]

    if pure_clauses:
        if comm_clauses:
            result = yield Select(tuple(c for _, c in comm_clauses),
                                  immediate=True)
            if result.index != ELSE_BRANCH:
                return comm_clauses[result.index][0], result.value
        index = yield Choice(tuple(pure_clauses))
        return index, None

    result = yield Select(tuple(c for _, c in comm_clauses),
                          immediate=immediate)
    if result.index == ELSE_BRANCH:
        return ELSE_BRANCH, None
    return comm_clauses[result.index][0], result.value


def _run_action(action: Callable[[Any], Any] | None,
                value: Any) -> Generator[Any, Any, None]:
    """Run a guard action, supporting both plain and generator callables."""
    if action is None:
        return
    outcome = action(value)
    if hasattr(outcome, "send") and hasattr(outcome, "throw"):
        yield from outcome


def repetitive(make_guards: Callable[[], Iterable[Guard]],
               max_iterations: int | None = None,
               partners: Iterable[Hashable] | None = None
               ) -> Generator[Any, Any, int]:
    """Execute a CSP repetitive command ``*[g1 -> S1 [] ...]``.

    ``make_guards`` is re-evaluated before every iteration (guards capture
    loop state).  The loop terminates — returning the number of iterations
    performed — when every boolean guard part is false, which is CSP's
    normal repetitive-command termination.  ``max_iterations`` guards
    against unintended infinite loops in tests.

    ``partners`` enables CSP's *distributed termination convention*: the
    loop also terminates once every named partner process has finished,
    even while boolean guards remain true.  (Without it, a server loop
    over ``inp(client)`` guards would deadlock when its clients exit.)
    The check is made before each blocking wait and whenever a wait could
    block forever.
    """
    partner_names = tuple(partners) if partners is not None else None
    iterations = 0
    while True:
        guards = list(make_guards())
        if not any(g.cond for g in guards):
            return iterations
        if partner_names is not None:
            statuses = yield QueryProcesses(partner_names)
            if all(statuses.values()):
                return iterations
            # Poll: try to commit immediately; if nothing is ready, wait a
            # moment and re-check partner liveness rather than blocking
            # forever on partners that may exit.
            index, value = yield from alternative(guards, immediate=True)
            if index == ELSE_BRANCH:
                yield Delay(_DTC_POLL_INTERVAL)
                continue
        else:
            index, value = yield from alternative(guards)
        yield from _run_action(guards[index].action, value)
        iterations += 1
        if max_iterations is not None and iterations >= max_iterations:
            raise CSPError(
                f"repetitive command exceeded {max_iterations} iterations")
