"""CSP process naming helpers: process arrays and parallel commands.

CSP programs are parallel commands ``[P1 || P2 || ... || Pn]`` over named
processes, including *arrays* of processes ``recipient(i: 1..5)`` where each
element knows its own index.  This module provides the naming conventions
used throughout the reproduction: an array element is addressed by the tuple
``(array_name, index)``.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Hashable, Mapping

from ..runtime import RunResult, Scheduler, Tracer
from ..runtime.scheduler import Transport

ProcessFactory = Callable[..., Generator[Any, Any, Any]]


def element(array_name: str, index: int) -> tuple[str, int]:
    """Address of element ``index`` of process array ``array_name``."""
    return (array_name, index)


def process_array(array_name: str, count: int, factory: ProcessFactory,
                  start: int = 1) -> dict[Hashable, Generator[Any, Any, Any]]:
    """Instantiate a CSP process array.

    ``factory(i)`` builds the body of element ``i``; indices run from
    ``start`` to ``start + count - 1`` (CSP arrays are 1-based in the
    paper's figures).  Returns a mapping from element addresses to bodies,
    suitable for merging into a parallel command.
    """
    return {element(array_name, i): factory(i)
            for i in range(start, start + count)}


def parallel(processes: Mapping[Hashable, Generator[Any, Any, Any]],
             seed: int = 0, max_steps: int = 1_000_000,
             transport: Transport | None = None,
             tracer: Tracer | None = None,
             scheduler: Scheduler | None = None) -> RunResult:
    """Execute the CSP parallel command ``[P1 || ... || Pn]``.

    All processes start together and the command terminates when every
    process has terminated.  Deadlock raises
    :class:`~repro.errors.DeadlockError`.
    """
    if scheduler is None:
        scheduler = Scheduler(seed=seed, max_steps=max_steps,
                              transport=transport, tracer=tracer)
    for name, body in processes.items():
        scheduler.spawn(name, body)
    return scheduler.run()
