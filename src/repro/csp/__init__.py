"""CSP substrate: synchronous naming communication with guarded commands.

Implements the CSP fragment the paper embeds scripts into: output/input
commands (``!``/``?``), guarded alternative and repetitive commands, process
arrays, and the parallel command — all on the deterministic runtime kernel.
"""

from .commands import (AltResult, Guard, alternative, guard, inp, out,
                       repetitive)
from .processes import element, parallel, process_array

__all__ = [
    "AltResult",
    "Guard",
    "alternative",
    "element",
    "guard",
    "inp",
    "out",
    "parallel",
    "process_array",
    "repetitive",
]
