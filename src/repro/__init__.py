"""repro — a full reproduction of "Script: A Communication Abstraction
Mechanism" (Francez & Hailpern, PODC 1983).

The library implements the *script* construct — an abstraction over patterns
of inter-process communication — together with the three host-language
substrates the paper embeds it in (CSP, Ada-style tasking, monitors), the
translation existence proofs of Section IV, the Pascal-like surface syntax of
Section III, a library of the paper's example scripts, and a verification
layer that mechanically checks the paper's stated semantic guarantees.

Quickstart::

    from repro import ScriptDef, Initiation, Termination, Mode
    # see examples/quickstart.py for a complete program
"""

from .errors import (AdaError, CSPError, DeadlockError, EnrollmentError,
                     MonitorError, PerformanceError, ProcessFailure,
                     ReproError, RoleBindingError, ScriptDefinitionError,
                     ScriptError, UnfilledRoleError, VerificationError)
from .runtime import (Choice, Delay, EventKind, Receive, Scheduler, Select,
                      SelectResult, Send, Tracer, WaitUntil, run_processes)

__version__ = "1.0.0"

__all__ = [
    "AdaError",
    "CSPError",
    "Choice",
    "DeadlockError",
    "Delay",
    "EnrollmentError",
    "EventKind",
    "MonitorError",
    "PerformanceError",
    "ProcessFailure",
    "Receive",
    "ReproError",
    "RoleBindingError",
    "Scheduler",
    "ScriptDefinitionError",
    "ScriptError",
    "Select",
    "SelectResult",
    "Send",
    "Tracer",
    "UnfilledRoleError",
    "VerificationError",
    "WaitUntil",
    "run_processes",
    "__version__",
]
