"""Fixed network topologies.

The paper's design brief fixes the network: "the abstraction will be
designed in a context of a fixed network ... no changes in the underlying
communication network are needed in order to execute a script".  A
:class:`Topology` is an undirected weighted graph of nodes (processors);
link weights are latencies.  All-pairs shortest-path latencies are computed
once and used by the transport to time every rendezvous.

Factories build the shapes the broadcast-strategy comparison needs (star,
line, balanced binary tree, complete graph, ring).
"""

from __future__ import annotations

import heapq
from typing import Hashable

from ..errors import ReproError

Node = Hashable


class TopologyError(ReproError):
    """A topology query referenced unknown nodes or a disconnected pair."""


class Topology:
    """An undirected weighted graph with cached shortest-path latencies."""

    def __init__(self, name: str = "topology"):
        self.name = name
        self._adjacency: dict[Node, dict[Node, float]] = {}
        self._distance_cache: dict[Node, dict[Node, float]] = {}
        self._disabled: set[frozenset] = set()

    # -- construction ------------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Add an isolated node (links add their endpoints automatically)."""
        self._adjacency.setdefault(node, {})
        self._distance_cache.clear()

    def add_link(self, a: Node, b: Node, latency: float = 1.0) -> None:
        """Add (or update) an undirected link with the given latency."""
        if latency < 0:
            raise TopologyError(f"negative latency {latency} on {a!r}-{b!r}")
        if a == b:
            raise TopologyError(f"self-link on {a!r}")
        self._adjacency.setdefault(a, {})[b] = latency
        self._adjacency.setdefault(b, {})[a] = latency
        self._distance_cache.clear()

    # -- link faults ---------------------------------------------------------

    def _require_link(self, a: Node, b: Node) -> frozenset:
        if b not in self._adjacency.get(a, {}):
            raise TopologyError(f"no link {a!r}-{b!r} on {self.name}")
        return frozenset((a, b))

    def disable_link(self, a: Node, b: Node) -> None:
        """Cut the direct link ``a``-``b`` (fault injection; idempotent).

        Disabled links carry no traffic: shortest paths route around them,
        and pairs left disconnected report as such via :meth:`connected`.
        The link's weight is preserved for :meth:`enable_link`.
        """
        self._disabled.add(self._require_link(a, b))
        self._distance_cache.clear()

    def enable_link(self, a: Node, b: Node) -> None:
        """Restore a previously disabled link (idempotent)."""
        self._disabled.discard(self._require_link(a, b))
        self._distance_cache.clear()

    @property
    def disabled_links(self) -> set[frozenset]:
        """Currently disabled links, as frozensets of endpoints."""
        return set(self._disabled)

    def connected(self, a: Node, b: Node) -> bool:
        """Is there a live path between ``a`` and ``b``?"""
        if a == b:
            if a not in self._adjacency:
                raise TopologyError(f"unknown node {a!r}")
            return True
        return b in self._distances_from(a)

    # -- queries --------------------------------------------------------------

    @property
    def nodes(self) -> list[Node]:
        """All nodes, in insertion order."""
        return list(self._adjacency)

    def neighbours(self, node: Node) -> dict[Node, float]:
        """Adjacent nodes and their direct-link latencies."""
        if node not in self._adjacency:
            raise TopologyError(f"unknown node {node!r}")
        return dict(self._adjacency[node])

    def link_count(self) -> int:
        """Number of undirected links."""
        return sum(len(peers) for peers in self._adjacency.values()) // 2

    def latency(self, a: Node, b: Node) -> float:
        """Shortest-path latency between two nodes (0 for a == b)."""
        if a == b:
            if a not in self._adjacency:
                raise TopologyError(f"unknown node {a!r}")
            return 0.0
        distances = self._distances_from(a)
        if b not in distances:
            raise TopologyError(f"no path from {a!r} to {b!r}")
        return distances[b]

    def _distances_from(self, source: Node) -> dict[Node, float]:
        if source not in self._adjacency:
            raise TopologyError(f"unknown node {source!r}")
        cached = self._distance_cache.get(source)
        if cached is not None:
            return cached
        distances: dict[Node, float] = {source: 0.0}
        frontier: list[tuple[float, int, Node]] = [(0.0, 0, source)]
        counter = 0
        while frontier:
            dist, _, node = heapq.heappop(frontier)
            if dist > distances.get(node, float("inf")):
                continue
            for peer, weight in self._adjacency[node].items():
                if self._disabled and frozenset((node, peer)) in self._disabled:
                    continue
                candidate = dist + weight
                if candidate < distances.get(peer, float("inf")):
                    distances[peer] = candidate
                    counter += 1
                    heapq.heappush(frontier, (candidate, counter, peer))
        self._distance_cache[source] = distances
        return distances


def star(leaf_count: int, latency: float = 1.0) -> Topology:
    """A hub node ``"hub"`` with ``leaf_count`` leaves ``("leaf", i)``."""
    topology = Topology(f"star({leaf_count})")
    topology.add_node("hub")
    for i in range(1, leaf_count + 1):
        topology.add_link("hub", ("leaf", i), latency)
    return topology


def line(length: int, latency: float = 1.0) -> Topology:
    """A chain of ``length`` nodes ``("n", 0..length-1)``."""
    topology = Topology(f"line({length})")
    if length < 1:
        raise TopologyError("line needs at least one node")
    topology.add_node(("n", 0))
    for i in range(1, length):
        topology.add_link(("n", i - 1), ("n", i), latency)
    return topology


def binary_tree(node_count: int, latency: float = 1.0) -> Topology:
    """A balanced binary tree over nodes ``("n", 1..node_count)`` (heap order)."""
    topology = Topology(f"tree({node_count})")
    if node_count < 1:
        raise TopologyError("tree needs at least one node")
    topology.add_node(("n", 1))
    for i in range(2, node_count + 1):
        topology.add_link(("n", i // 2), ("n", i), latency)
    return topology


def complete(node_count: int, latency: float = 1.0) -> Topology:
    """A complete graph over ``("n", 0..node_count-1)``."""
    topology = Topology(f"complete({node_count})")
    if node_count < 1:
        raise TopologyError("complete graph needs at least one node")
    topology.add_node(("n", 0))
    for i in range(node_count):
        for j in range(i + 1, node_count):
            topology.add_link(("n", i), ("n", j), latency)
    return topology


def ring(node_count: int, latency: float = 1.0) -> Topology:
    """A cycle over ``("n", 0..node_count-1)``."""
    topology = Topology(f"ring({node_count})")
    if node_count < 3:
        raise TopologyError("ring needs at least three nodes")
    for i in range(node_count):
        topology.add_link(("n", i), ("n", (i + 1) % node_count), latency)
    return topology
