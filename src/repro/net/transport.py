"""Network transport: placement-aware latency and message accounting.

A :class:`NetworkTransport` plugs into the scheduler's transport hook: every
committed rendezvous is charged the shortest-path latency between the nodes
hosting the two processes, and counted into :class:`MessageStats`.  Because
the paper requires that "the role should be executed by the same processor
on which the main body of the enrolling process is executed", placement maps
*processes* to nodes — roles automatically inherit the placement of whoever
enrolled, with no extra mapping.

The transport is also the seat of injected network faults
(:mod:`repro.faults`): links may be partitioned and healed, a latency
factor models congestion spikes, and a drop factor models lossy links that
force retransmissions.  Partitions act at *matching* time — install
:meth:`NetworkTransport.match_filter` on the scheduler and a rendezvous
across a cut link simply never commits until the link heals (the
synchronous-communication analogue of an undeliverable message).
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Hashable, Mapping, TYPE_CHECKING

from ..errors import DeliveryFailed
from ..runtime.instrument import NULL_SINK, Sink
from .topology import Topology, TopologyError

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.board import Commit
    from ..runtime.process import Process
    from ..runtime.scheduler import Scheduler

Node = Hashable


@dataclasses.dataclass
class MessageStats:
    """Aggregate message accounting for one run."""

    messages: int = 0
    local_messages: int = 0       # same-node rendezvous
    total_latency: float = 0.0
    max_latency: float = 0.0
    dropped: int = 0              # simulated retransmissions (drop faults)
    delivery_failures: int = 0    # messages that exhausted their retries
    per_pair: Counter = dataclasses.field(default_factory=Counter)

    def record(self, src: Node, dst: Node, latency: float) -> None:
        """Account one rendezvous between ``src`` and ``dst``.

        A zero-latency rendezvous counts as local only when both endpoints
        share a node; distinct nodes joined by a zero-weight link still
        produce a remote message.
        """
        self.messages += 1
        if src == dst:
            self.local_messages += 1
        self.total_latency += latency
        self.max_latency = max(self.max_latency, latency)
        self.per_pair[(src, dst)] += 1

    @property
    def remote_messages(self) -> int:
        """Messages that crossed at least one link."""
        return self.messages - self.local_messages


@dataclasses.dataclass(frozen=True)
class RetrySchedule:
    """Per-message retransmission budget and backoff shape.

    A drop window (``NetworkTransport.drop_retries = r``) forces ``r``
    retransmissions per remote message, i.e. ``r + 1`` delivery attempts.
    The schedule bounds attempts and prices each retransmission: attempt
    ``i`` (0-based retry index) adds ``backoff(i)`` of virtual latency on
    top of re-paying the link latency.  Exhausting ``max_attempts`` raises
    :class:`~repro.errors.DeliveryFailed` instead of delivering at any cost.

    The defaults (``backoff_base=0.0``) reproduce the historical static
    multiplier exactly — ``latency * (1 + retries)`` with no extra backoff
    — so existing seeds replay byte-identically unless a schedule is
    explicitly configured.
    """

    max_attempts: int = 8
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    backoff_cap: float = 8.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff must be non-negative")

    def backoff(self, retry: int) -> float:
        """Extra virtual latency charged for the ``retry``-th retransmission."""
        if self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_base * self.backoff_factor ** retry,
                   self.backoff_cap)

    def total_backoff(self, retries: int) -> float:
        """Summed backoff over ``retries`` consecutive retransmissions."""
        return sum(self.backoff(i) for i in range(retries))


class NetworkTransport:
    """Scheduler transport hook backed by a :class:`Topology`.

    ``placement`` maps process names to topology nodes.  Processes without
    a placement use ``default_node`` when given, otherwise communication
    involving them is an error — silent mis-placement would corrupt the
    benchmark numbers.

    Fault-injection state (all mutable at run time, usually via timers a
    :class:`~repro.faults.FaultPlan` installs):

    ``latency_factor``
        Multiplier on every remote message's latency (congestion spikes).
    ``drop_retries``
        Number of simulated retransmissions per remote message; each
        retransmission re-pays the link latency plus the configured
        :class:`RetrySchedule` backoff and is counted in ``stats.dropped``.
        When the implied attempt count exceeds ``retry.max_attempts`` the
        message is *not* delivered: :class:`~repro.errors.DeliveryFailed`
        propagates to the scheduler, which surfaces it to both parties
        like a timeout.
    partitions
        :meth:`partition` / :meth:`heal` cut and restore topology links;
        :meth:`match_filter` turns the cut into a matching-time barrier.
        ``rendezvous_deadline`` (seconds of virtual time, or ``None``)
        bounds how long a pair blocked by the filter may wait — it is
        copied onto ``scheduler.match_deadline`` when a
        :class:`~repro.faults.FaultPlan` installs this transport.
    """

    def __init__(self, topology: Topology,
                 placement: Mapping[Hashable, Node],
                 default_node: Node | None = None,
                 sink: Sink | None = None,
                 retry: RetrySchedule | None = None,
                 rendezvous_deadline: float | None = None):
        self.topology = topology
        self.placement = dict(placement)
        self.default_node = default_node
        self.stats = MessageStats()
        self.latency_factor = 1.0
        self.drop_retries = 0
        self.retry = retry if retry is not None else RetrySchedule()
        self.rendezvous_deadline = rendezvous_deadline
        self.sink = sink if sink is not None else NULL_SINK

    def node_of(self, process: Hashable) -> Node:
        node = self.placement.get(process, self.default_node)
        if node is None:
            raise TopologyError(f"process {process!r} has no placement on "
                                f"{self.topology.name}")
        return node

    def place(self, process: Hashable, node: Node) -> None:
        """Assign (or reassign) a process to a node."""
        self.placement[process] = node

    # -- fault injection -----------------------------------------------------

    def partition(self, a: Node, b: Node) -> None:
        """Cut the direct link ``a``-``b`` (traffic reroutes or blocks)."""
        self.topology.disable_link(a, b)

    def heal(self, a: Node, b: Node) -> None:
        """Restore a previously partitioned link."""
        self.topology.enable_link(a, b)

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Can the nodes hosting processes ``a`` and ``b`` reach each other?"""
        return self.topology.connected(self.node_of(a), self.node_of(b))

    def match_filter(self, sender: "Process", receiver: "Process") -> bool:
        """Scheduler match filter: block rendezvous across a partition.

        Processes with no placement are treated as reachable so that the
        placement error surfaces from the transport call itself (with a
        clear message) rather than being silently swallowed here.
        """
        try:
            return self.connected(sender.name, receiver.name)
        except TopologyError:
            return True

    # -- transport hook ------------------------------------------------------

    def __call__(self, scheduler: "Scheduler", commit: "Commit") -> float:
        src = self.node_of(commit.sender.name)
        dst = self.node_of(commit.receiver.name)
        if src == dst:
            # Same node: no link is crossed, so congestion and drop
            # faults cannot apply.  (A zero-weight *link* is different:
            # the message is still remote and pays retries/backoff.)
            latency = 0.0
        else:
            latency = self.topology.latency(src, dst) * self.latency_factor
            if self.drop_retries:
                retries = self.drop_retries
                if retries + 1 > self.retry.max_attempts:
                    self.stats.delivery_failures += 1
                    raise DeliveryFailed(commit.sender.name,
                                         commit.receiver.name,
                                         self.retry.max_attempts)
                self.stats.dropped += retries
                latency = (latency * (1 + retries)
                           + self.retry.total_backoff(retries))
        self.stats.record(src, dst, latency)
        if self.sink:
            self.sink.on_message(scheduler.now, src, dst, latency)
        return latency
