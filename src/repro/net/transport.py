"""Network transport: placement-aware latency and message accounting.

A :class:`NetworkTransport` plugs into the scheduler's transport hook: every
committed rendezvous is charged the shortest-path latency between the nodes
hosting the two processes, and counted into :class:`MessageStats`.  Because
the paper requires that "the role should be executed by the same processor
on which the main body of the enrolling process is executed", placement maps
*processes* to nodes — roles automatically inherit the placement of whoever
enrolled, with no extra mapping.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Hashable, Mapping, TYPE_CHECKING

from .topology import Topology, TopologyError

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.board import Commit
    from ..runtime.scheduler import Scheduler

Node = Hashable


@dataclasses.dataclass
class MessageStats:
    """Aggregate message accounting for one run."""

    messages: int = 0
    local_messages: int = 0       # same-node rendezvous (latency 0)
    total_latency: float = 0.0
    max_latency: float = 0.0
    per_pair: Counter = dataclasses.field(default_factory=Counter)

    def record(self, src: Node, dst: Node, latency: float) -> None:
        """Account one rendezvous between ``src`` and ``dst``."""
        self.messages += 1
        if latency == 0:
            self.local_messages += 1
        self.total_latency += latency
        self.max_latency = max(self.max_latency, latency)
        self.per_pair[(src, dst)] += 1

    @property
    def remote_messages(self) -> int:
        """Messages that crossed at least one link."""
        return self.messages - self.local_messages


class NetworkTransport:
    """Scheduler transport hook backed by a :class:`Topology`.

    ``placement`` maps process names to topology nodes.  Processes without
    a placement use ``default_node`` when given, otherwise communication
    involving them is an error — silent mis-placement would corrupt the
    benchmark numbers.
    """

    def __init__(self, topology: Topology,
                 placement: Mapping[Hashable, Node],
                 default_node: Node | None = None):
        self.topology = topology
        self.placement = dict(placement)
        self.default_node = default_node
        self.stats = MessageStats()

    def node_of(self, process: Hashable) -> Node:
        node = self.placement.get(process, self.default_node)
        if node is None:
            raise TopologyError(f"process {process!r} has no placement on "
                                f"{self.topology.name}")
        return node

    def place(self, process: Hashable, node: Node) -> None:
        """Assign (or reassign) a process to a node."""
        self.placement[process] = node

    def __call__(self, scheduler: "Scheduler", commit: "Commit") -> float:
        src = self.node_of(commit.sender.name)
        dst = self.node_of(commit.receiver.name)
        latency = self.topology.latency(src, dst)
        self.stats.record(src, dst, latency)
        return latency
