"""Network transport: placement-aware latency and message accounting.

A :class:`NetworkTransport` plugs into the scheduler's transport hook: every
committed rendezvous is charged the shortest-path latency between the nodes
hosting the two processes, and counted into :class:`MessageStats`.  Because
the paper requires that "the role should be executed by the same processor
on which the main body of the enrolling process is executed", placement maps
*processes* to nodes — roles automatically inherit the placement of whoever
enrolled, with no extra mapping.

The transport is also the seat of injected network faults
(:mod:`repro.faults`): links may be partitioned and healed, a latency
factor models congestion spikes, and a drop factor models lossy links that
force retransmissions.  Partitions act at *matching* time — install
:meth:`NetworkTransport.match_filter` on the scheduler and a rendezvous
across a cut link simply never commits until the link heals (the
synchronous-communication analogue of an undeliverable message).
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Hashable, Mapping, TYPE_CHECKING

from ..runtime.instrument import NULL_SINK, Sink
from .topology import Topology, TopologyError

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.board import Commit
    from ..runtime.process import Process
    from ..runtime.scheduler import Scheduler

Node = Hashable


@dataclasses.dataclass
class MessageStats:
    """Aggregate message accounting for one run."""

    messages: int = 0
    local_messages: int = 0       # same-node rendezvous
    total_latency: float = 0.0
    max_latency: float = 0.0
    dropped: int = 0              # simulated retransmissions (drop faults)
    per_pair: Counter = dataclasses.field(default_factory=Counter)

    def record(self, src: Node, dst: Node, latency: float) -> None:
        """Account one rendezvous between ``src`` and ``dst``.

        A zero-latency rendezvous counts as local only when both endpoints
        share a node; distinct nodes joined by a zero-weight link still
        produce a remote message.
        """
        self.messages += 1
        if src == dst:
            self.local_messages += 1
        self.total_latency += latency
        self.max_latency = max(self.max_latency, latency)
        self.per_pair[(src, dst)] += 1

    @property
    def remote_messages(self) -> int:
        """Messages that crossed at least one link."""
        return self.messages - self.local_messages


class NetworkTransport:
    """Scheduler transport hook backed by a :class:`Topology`.

    ``placement`` maps process names to topology nodes.  Processes without
    a placement use ``default_node`` when given, otherwise communication
    involving them is an error — silent mis-placement would corrupt the
    benchmark numbers.

    Fault-injection state (all mutable at run time, usually via timers a
    :class:`~repro.faults.FaultPlan` installs):

    ``latency_factor``
        Multiplier on every remote message's latency (congestion spikes).
    ``drop_retries``
        Number of simulated retransmissions per remote message; each
        retransmission re-pays the link latency and is counted in
        ``stats.dropped``.
    partitions
        :meth:`partition` / :meth:`heal` cut and restore topology links;
        :meth:`match_filter` turns the cut into a matching-time barrier.
    """

    def __init__(self, topology: Topology,
                 placement: Mapping[Hashable, Node],
                 default_node: Node | None = None,
                 sink: Sink | None = None):
        self.topology = topology
        self.placement = dict(placement)
        self.default_node = default_node
        self.stats = MessageStats()
        self.latency_factor = 1.0
        self.drop_retries = 0
        self.sink = sink if sink is not None else NULL_SINK

    def node_of(self, process: Hashable) -> Node:
        node = self.placement.get(process, self.default_node)
        if node is None:
            raise TopologyError(f"process {process!r} has no placement on "
                                f"{self.topology.name}")
        return node

    def place(self, process: Hashable, node: Node) -> None:
        """Assign (or reassign) a process to a node."""
        self.placement[process] = node

    # -- fault injection -----------------------------------------------------

    def partition(self, a: Node, b: Node) -> None:
        """Cut the direct link ``a``-``b`` (traffic reroutes or blocks)."""
        self.topology.disable_link(a, b)

    def heal(self, a: Node, b: Node) -> None:
        """Restore a previously partitioned link."""
        self.topology.enable_link(a, b)

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Can the nodes hosting processes ``a`` and ``b`` reach each other?"""
        return self.topology.connected(self.node_of(a), self.node_of(b))

    def match_filter(self, sender: "Process", receiver: "Process") -> bool:
        """Scheduler match filter: block rendezvous across a partition.

        Processes with no placement are treated as reachable so that the
        placement error surfaces from the transport call itself (with a
        clear message) rather than being silently swallowed here.
        """
        try:
            return self.connected(sender.name, receiver.name)
        except TopologyError:
            return True

    # -- transport hook ------------------------------------------------------

    def __call__(self, scheduler: "Scheduler", commit: "Commit") -> float:
        src = self.node_of(commit.sender.name)
        dst = self.node_of(commit.receiver.name)
        base = self.topology.latency(src, dst)
        latency = base * self.latency_factor if base > 0 else 0.0
        if latency > 0 and self.drop_retries:
            self.stats.dropped += self.drop_retries
            latency *= 1 + self.drop_retries
        self.stats.record(src, dst, latency)
        if self.sink:
            self.sink.on_message(scheduler.now, src, dst, latency)
        return latency
