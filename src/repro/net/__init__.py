"""Fixed-network simulation: topologies, placement, latency, accounting."""

from .topology import (Topology, TopologyError, binary_tree, complete, line,
                       ring, star)
from .transport import MessageStats, NetworkTransport, RetrySchedule

__all__ = [
    "MessageStats",
    "NetworkTransport",
    "RetrySchedule",
    "Topology",
    "TopologyError",
    "binary_tree",
    "complete",
    "line",
    "ring",
    "star",
]
