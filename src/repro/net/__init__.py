"""Fixed-network simulation: topologies, placement, latency, accounting."""

from .topology import (Topology, TopologyError, binary_tree, complete, line,
                       ring, star)
from .transport import MessageStats, NetworkTransport

__all__ = [
    "MessageStats",
    "NetworkTransport",
    "Topology",
    "TopologyError",
    "binary_tree",
    "complete",
    "line",
    "ring",
    "star",
]
