"""Chaos soak harness: many performances under seeded fault schedules.

The harness runs three scripts — the broadcast (Section II's running
example, in an open-membership chaos variant), the Figure 5 replicated
lock manager, and an open chatroom with member churn (Section V's
open-ended scripts under load) — for hundreds of performances, each under
a deterministic :class:`~repro.faults.plan.FaultPlan`, and checks after
every run that the kernel is residue-free:

* the rendezvous board is empty (no orphaned offers),
* no process is still parked on a condition,
* no timers are armed,
* the alias registry is empty (crashes and aborts dropped every role
  address),
* every enrollment pool drained and every performance ended.

Semantic invariants ride along: a completed chaos broadcast must have
delivered the payload to every surviving recipient, and an aborted one
must stem from a sender crash.  Violations raise
:class:`~repro.errors.ChaosInvariantError` naming the seed, so a soak
failure is a one-seed reproduction recipe.

Determinism is checked separately by :func:`verify_determinism`: the same
seed must produce a byte-identical formatted trace, faults included.
"""

from __future__ import annotations

import dataclasses
import random
from collections import Counter
from typing import Any, Generator, Hashable

from ..core import (Initiation, Mode, Param, ScriptDef, ScriptInstance,
                    SealPolicy, SendTo, Termination, UNFILLED)
from ..errors import ChaosInvariantError, PerformanceAborted
from ..net import NetworkTransport, complete, star
from ..runtime import TIMED_OUT, Delay, Scheduler, format_trace
from ..scripts.lockmanager import MAJORITY, ReplicatedLockService
from .plan import FaultPlan
from .reporting import kv_lines

Body = Generator[Any, Any, Any]

SCRIPTS = ("broadcast", "lock", "chatroom")


# ---------------------------------------------------------------------------
# The chaos broadcast script (open membership, manual seal, critical sender)
# ---------------------------------------------------------------------------

def make_chaos_broadcast(n: int = 4,
                         enroll_window: float = 3.0) -> ScriptDef:
    """A broadcast built to be crashed into.

    Immediate initiation with a *manual* seal: the sender waits
    ``enroll_window`` virtual-time units for recipients to trickle in,
    seals the performance itself, and broadcasts to whoever made it —
    absent recipients get the paper's unfilled-role treatment.  Only the
    sender is critical, so a recipient crash demotes to absence while a
    sender crash aborts the performance.

    Recipients receive with a timeout and retry, so a link partition that
    outlasts one rendezvous attempt is survived rather than wedged.
    """
    script = ScriptDef("chaos_broadcast", initiation=Initiation.IMMEDIATE,
                       termination=Termination.IMMEDIATE)

    @script.role("sender", params=[Param("data", Mode.IN)])
    def sender(ctx: Any, data: Any) -> Body:
        yield Delay(enroll_window)
        ctx.close_enrollment()
        for i in ctx.family_indices("recipient"):
            yield from ctx.send(("recipient", i), data)

    @script.role_family("recipient", range(1, n + 1),
                        params=[Param("data", Mode.OUT)])
    def recipient(ctx: Any, data: Any) -> Body:
        while True:
            value = yield from ctx.receive("sender",
                                           timeout=2 * enroll_window)
            if value is TIMED_OUT:
                continue  # partition outlasted one attempt; retry
            data.value = value
            return

    script.critical_role_set("sender")
    return script


# ---------------------------------------------------------------------------
# The open-chatroom churn script (Section V open family, manual seal)
# ---------------------------------------------------------------------------

def make_chatroom(max_members: int = 4, join_window: float = 3.0,
                  rounds: int = 4, send_patience: float = 2.0,
                  member_patience: float = 6.0) -> ScriptDef:
    """An open chatroom built to churn: members join, depart, and crash.

    The host (critical) keeps enrollment open for ``join_window``, seals
    the room itself, then broadcasts ``rounds`` numbered messages to
    whichever members made it in.  Every host send is a bounded select —
    a partitioned or departed member costs ``send_patience``, never a
    wedge.  Members receive with ``member_patience`` and *depart* (role
    body returns) after their planned ``stay`` rounds or on a timeout, so
    the member population shrinks mid-performance — the open-ended-script
    behaviour the Section V extension promises.
    """
    script = ScriptDef("chaos_chatroom", initiation=Initiation.IMMEDIATE,
                       termination=Termination.IMMEDIATE)

    @script.role("host", params=[Param("delivered", Mode.OUT)])
    def host(ctx: Any, delivered: Any) -> Body:
        yield Delay(join_window)
        ctx.close_enrollment()
        sent: list[tuple[int, int]] = []
        for r in range(rounds):
            for i in ctx.family_indices("member"):
                member = ("member", i)
                if ctx.terminated(member):
                    continue  # departed or demoted to absence
                result = yield from ctx.select(
                    [SendTo(member, (r, f"news-{r}"))],
                    timeout=send_patience)
                if result.index == 0:
                    sent.append((r, i))
        delivered.value = sent

    @script.role_family("member", None, min_count=0, max_count=max_members,
                        params=[Param("stay", Mode.IN),
                                Param("log", Mode.OUT)])
    def member(ctx: Any, stay: Any, log: Any) -> Body:
        received: list[Any] = []
        while True:
            value = yield from ctx.receive("host", timeout=member_patience)
            if value is TIMED_OUT or value is UNFILLED:
                break  # host quiet for too long (or gone): depart
            received.append(value)
            if value[0] + 1 >= stay:
                break  # planned departure mid-performance
        log.value = received

    script.critical_role_set("host")
    return script


# ---------------------------------------------------------------------------
# Seed-derived fault plans (shared by the runners, `plan_for_seed`, and
# the --describe-plan CLI: one draw sequence, two consumers)
# ---------------------------------------------------------------------------

def broadcast_plan(rng: random.Random, n: int = 4,
                   enroll_window: float = 3.0,
                   horizon: float = 30.0) -> FaultPlan:
    """The seed-derived default plan of :func:`run_chaos_broadcast`.

    Possible sender crash (only after the seal window — a pre-seal sender
    crash leaves an unsealable performance, which is a scripted-system
    design error, not a chaos finding), recipient crashes at any time,
    one hub-leaf partition window, and optional latency/drop windows.
    """
    plan = FaultPlan()
    if rng.random() < 0.25:
        plan.crash(round(rng.uniform(enroll_window + 0.5,
                                     horizon / 2), 3), "S")
    for i in range(1, n + 1):
        if rng.random() < 0.3:
            plan.crash(round(rng.uniform(0.2, horizon / 2), 3), ("R", i))
    if rng.random() < 0.5:
        leaf = rng.randint(1, n)
        start = round(rng.uniform(0.2, enroll_window + 2.0), 3)
        plan.partition(start, "hub", ("leaf", leaf),
                       heal_at=round(start + rng.uniform(0.5, 4.0), 3))
    if rng.random() < 0.3:
        start = round(rng.uniform(0.2, horizon / 3), 3)
        plan.slow(start, round(rng.uniform(2.0, 5.0), 2),
                  until=round(start + rng.uniform(1.0, 5.0), 3))
    if rng.random() < 0.3:
        start = round(rng.uniform(0.2, horizon / 3), 3)
        plan.drop(start, rng.randint(1, 3),
                  until=round(start + rng.uniform(1.0, 5.0), 3))
    return plan


def lock_plan(rng: random.Random, clients: int = 4,
              horizon: float = 12.0) -> FaultPlan:
    """The seed-derived default plan of :func:`run_chaos_lock`.

    Client crashes only: managers hold the lock tables, which must
    survive the soak, so killing one is out of contract by design.
    """
    plan = FaultPlan()
    for i in range(1, clients + 1):
        if rng.random() < 0.4:
            plan.crash(round(rng.uniform(0.2, horizon * 0.6), 3),
                       ("client", i))
    return plan


def chatroom_plan(rng: random.Random, n: int = 4,
                  join_window: float = 3.0,
                  horizon: float = 40.0) -> FaultPlan:
    """The seed-derived default plan of :func:`run_chaos_chatroom`.

    Possible host crash (post-seal only, like the broadcast's sender),
    member crashes at any time, one hub-leaf partition that sometimes
    *never heals* (chatrooms tolerate a member falling off the net: the
    member departs on timeout), and optional latency/drop windows.
    """
    plan = FaultPlan()
    if rng.random() < 0.25:
        plan.crash(round(rng.uniform(join_window + 0.5,
                                     horizon / 2), 3), "H")
    for i in range(1, n + 1):
        if rng.random() < 0.3:
            plan.crash(round(rng.uniform(0.2, horizon / 2), 3), ("M", i))
    if rng.random() < 0.5:
        leaf = rng.randint(1, n)
        start = round(rng.uniform(0.2, join_window + 2.0), 3)
        if rng.random() < 0.35:
            plan.partition(start, "hub", ("leaf", leaf))  # never heals
        else:
            plan.partition(start, "hub", ("leaf", leaf),
                           heal_at=round(start + rng.uniform(0.5, 4.0), 3))
    if rng.random() < 0.3:
        start = round(rng.uniform(0.2, horizon / 3), 3)
        plan.slow(start, round(rng.uniform(2.0, 5.0), 2),
                  until=round(start + rng.uniform(1.0, 5.0), 3))
    if rng.random() < 0.3:
        start = round(rng.uniform(0.2, horizon / 3), 3)
        plan.drop(start, rng.randint(1, 3),
                  until=round(start + rng.uniform(1.0, 5.0), 3))
    return plan


def plan_for_seed(script: str, seed: int, **options: Any) -> FaultPlan:
    """The fault plan a plan-less run of ``script`` at ``seed`` installs.

    Replays exactly the runner's RNG draw sequence (the generators above
    run first against a fresh ``random.Random(seed)`` in every runner),
    so ``plan_for_seed(s, seed).describe() == run(seed).faults`` — pinned
    by test.  ``options`` accepts the runner's sizing keywords.
    """
    rng = random.Random(seed)
    if script == "broadcast":
        return broadcast_plan(rng, n=options.get("n", 4),
                              enroll_window=options.get("enroll_window", 3.0),
                              horizon=options.get("horizon", 30.0))
    if script == "lock":
        return lock_plan(rng, clients=options.get("clients", 4),
                         horizon=options.get("horizon", 12.0))
    if script == "chatroom":
        return chatroom_plan(rng, n=options.get("n", 4),
                             join_window=options.get("join_window", 3.0),
                             horizon=options.get("horizon", 40.0))
    raise ChaosInvariantError(
        f"unknown chaos script {script!r}; choose from {SCRIPTS}")


# ---------------------------------------------------------------------------
# Per-run record and residue checking
# ---------------------------------------------------------------------------

@dataclasses.dataclass(slots=True)
class ChaosRun:
    """Outcome of one chaos run (one seed)."""

    seed: int
    outcome: str                 # "completed" | "aborted"
    results: dict[Any, Any]
    killed: list[Any]
    crashes: int                 # supervised role crashes observed
    aborts: int                  # performances aborted
    faults: list[str]            # the installed plan, described
    performances: int
    time: float
    trace: str
    #: Raw trace events, for span/Chrome-trace export of this exact run
    #: (the replay-equivalence property compares these byte-for-byte).
    events: tuple = ()


def check_residue(scheduler: Scheduler, seed: int,
                  instances: tuple[ScriptInstance, ...] = ()) -> None:
    """Raise :class:`ChaosInvariantError` if a finished run left residue."""
    problems: list[str] = []
    if scheduler.board_size:
        problems.append(f"{scheduler.board_size} offer group(s) on the board")
    if scheduler.waiter_count:
        problems.append(f"{scheduler.waiter_count} stranded waiter(s)")
    if scheduler.pending_timer_count:
        problems.append(f"{scheduler.pending_timer_count} armed timer(s)")
    if scheduler.alias_owner:
        problems.append(f"alias registry retains "
                        f"{sorted(scheduler.alias_owner, key=repr)!r}")
    for instance in instances:
        if instance.pool:
            problems.append(f"{instance.name}: {len(instance.pool)} pooled "
                            f"request(s) never resolved")
        for performance in instance.performances:
            if not performance.ended:
                problems.append(f"{performance.id} never ended")
    if problems:
        raise ChaosInvariantError(f"seed {seed}: " + "; ".join(problems),
                                  category="residue")


def _fail(seed: int, message: str) -> None:
    raise ChaosInvariantError(f"seed {seed}: {message}",
                              category="semantics")


# ---------------------------------------------------------------------------
# Broadcast under chaos
# ---------------------------------------------------------------------------

def run_chaos_broadcast(seed: int, n: int = 4, payload: Any = "payload",
                        plan: FaultPlan | None = None,
                        enroll_window: float = 3.0,
                        horizon: float = 30.0,
                        journal: Any = None) -> ChaosRun:
    """One chaos broadcast: star network, seeded faults, full invariants.

    The sender sits on the hub, recipient *i* on leaf *i*.  Without an
    explicit ``plan``, a seed-derived one is generated: possible sender
    crash (only after the seal window — a pre-seal sender crash leaves an
    unsealable performance, which is a scripted-system design error, not a
    chaos finding), recipient crashes at any time, one hub-leaf partition
    window, and optional latency/drop windows.

    ``journal`` is a :class:`~repro.persist.record.FrameSink` (recorder
    or replay validator); it is attached before any process exists, so
    the journal covers the run's every nondeterminism-resolving step.
    """
    scheduler = Scheduler(seed=seed)
    topology = star(n)
    placement: dict[Hashable, Any] = {"S": "hub"}
    placement.update({("R", i): ("leaf", i) for i in range(1, n + 1)})
    transport = NetworkTransport(topology, placement)
    scheduler.transport = transport
    if journal is not None:
        journal.attach(scheduler)

    script = make_chaos_broadcast(n, enroll_window)
    # Explicit name: the default names draw on a process-global counter,
    # which would leak into performance ids and break trace determinism.
    instance = script.instance(scheduler, name="chaos_broadcast",
                               seal_policy=SealPolicy.MANUAL)
    aborted = {"flag": False}
    supervisor = instance.supervise(
        on_abort=lambda _performance: aborted.__setitem__("flag", True))

    rng = random.Random(seed)
    if plan is None:
        plan = broadcast_plan(rng, n, enroll_window, horizon)
    plan.install(scheduler, transport=transport)

    def sender_process() -> Body:
        try:
            yield from instance.enroll("sender", data=payload)
        except PerformanceAborted:
            return "aborted"
        return "sent"

    def recipient_process(i: int, stagger: float) -> Body:
        yield Delay(stagger)
        try:
            out = yield from instance.enroll(
                ("recipient", i),
                withdraw_when=lambda: aborted["flag"])
        except PerformanceAborted:
            return "aborted"
        if out is None:
            return "withdrawn"
        return out["data"]

    scheduler.spawn("S", sender_process())
    for i in range(1, n + 1):
        stagger = round(rng.uniform(0.0, 0.8 * enroll_window), 3)
        scheduler.spawn(("R", i), recipient_process(i, stagger))

    result = scheduler.run()
    check_residue(scheduler, seed, (instance,))
    # Long soaks spawn many short-lived processes; reap the finished
    # records (their outcomes are snapshotted into later RunResults).
    scheduler.reap()

    outcome = "aborted" if supervisor.aborts else "completed"
    if outcome == "aborted":
        if "S" not in result.killed:
            _fail(seed, "performance aborted but the sender survived")
    else:
        for i in range(1, n + 1):
            name = ("R", i)
            if name in result.killed:
                continue
            if result.results.get(name) != payload:
                _fail(seed, f"recipient {i} survived a completed broadcast "
                            f"but holds {result.results.get(name)!r}")
    if journal is not None:
        journal.finish(outcome)
    return ChaosRun(seed=seed, outcome=outcome, results=result.results,
                    killed=result.killed, crashes=supervisor.crashes,
                    aborts=supervisor.aborts, faults=plan.describe(),
                    performances=instance.performance_count,
                    time=result.time, trace=format_trace(result.tracer),
                    events=result.tracer.snapshot())


# ---------------------------------------------------------------------------
# Lock manager under chaos
# ---------------------------------------------------------------------------

def run_chaos_lock(seed: int, k: int = 3, clients: int = 4,
                   plan: FaultPlan | None = None,
                   horizon: float = 12.0,
                   journal: Any = None) -> ChaosRun:
    """One chaos lock-manager workload: client crashes mid-protocol.

    Each client starts at a staggered virtual time, takes a majority lock
    on one of two contended items, holds it for a while and releases; the
    fault plan kills a random subset of clients at random times inside
    that window.  A crashed lone client aborts its performance (no
    critical set stays covered) and the managers — supervised, unlike the
    plain demo — catch :class:`~repro.errors.PerformanceAborted` and
    re-enroll for the survivors.  A crashed client whose performance also
    held another client degrades to absence and the performance completes.
    Managers never crash: the lock tables must survive the soak.
    """
    scheduler = Scheduler(seed=seed)
    # One node per participant, complete graph, unit latency: every
    # manager round-trip advances the clock, so performances span virtual
    # time and crash timers can land *inside* one.
    topology = complete(k + clients)
    placement: dict[Hashable, Any] = {}
    for index in range(1, k + 1):
        placement[("manager-proc", index)] = ("n", index - 1)
    for i in range(1, clients + 1):
        placement[("client", i)] = ("n", k + i - 1)
    transport = NetworkTransport(topology, placement)
    scheduler.transport = transport
    if journal is not None:
        journal.attach(scheduler)
    service = ReplicatedLockService(scheduler, k=k, strategy=MAJORITY,
                                    instance_name="chaos_lock")
    instance = service.instance
    supervisor = instance.supervise()
    rng = random.Random(seed)
    # The plan is drawn before the client staggers so that a fresh
    # ``random.Random(seed)`` reproduces it: the contract behind
    # :func:`plan_for_seed` and the ``--describe-plan`` CLI.
    if plan is None:
        plan = lock_plan(rng, clients, horizon)

    finished: set[int] = set()

    def all_done() -> bool:
        return len(finished) >= clients

    def note_kill(process: Any) -> None:
        name = process.name
        if isinstance(name, tuple) and name[0] == "client":
            finished.add(name[1])

    scheduler.on_kill(note_kill)

    def manager_process(index: int) -> Body:
        served = 0
        while not all_done():
            try:
                out = yield from instance.enroll(
                    ("manager", index), table=service.tables[index - 1],
                    withdraw_when=all_done)
            except PerformanceAborted:
                continue  # crashed client took the performance down; re-arm
            if out is None:
                break
            served += 1
        return served

    def client_process(i: int, start: float, hold: float) -> Body:
        role = "reader" if i % 2 else "writer"
        item = ("item", i % 2)
        history: list[str] = []
        yield Delay(start)
        try:
            status = yield from service.request(role, ("c", i), item, "lock")
            history.append(status)
            if status == "granted":
                yield Delay(hold)
                history.append((yield from service.request(
                    role, ("c", i), item, "release")))
        except PerformanceAborted:
            history.append("aborted")
        finished.add(i)
        return history

    for index in range(1, k + 1):
        scheduler.spawn(("manager-proc", index), manager_process(index))
    for i in range(1, clients + 1):
        start = round(rng.uniform(0.0, horizon / 3), 3)
        hold = round(rng.uniform(0.5, horizon / 4), 3)
        scheduler.spawn(("client", i), client_process(i, start, hold))

    plan.install(scheduler)

    result = scheduler.run()
    check_residue(scheduler, seed, (instance,))
    # Long soaks spawn many short-lived processes; reap the finished
    # records (their outcomes are snapshotted into later RunResults).
    scheduler.reap()

    for i in range(1, clients + 1):
        name = ("client", i)
        if name in result.killed:
            continue
        history = result.results.get(name)
        if not history:
            _fail(seed, f"surviving client {i} finished without a status")
        if history[0] == "granted" and history[-1] not in ("released",
                                                           "aborted"):
            _fail(seed, f"client {i} was granted but never released: "
                        f"{history!r}")
    outcome = "aborted" if supervisor.aborts else "completed"
    if journal is not None:
        journal.finish(outcome)
    return ChaosRun(seed=seed, outcome=outcome, results=result.results,
                    killed=result.killed, crashes=supervisor.crashes,
                    aborts=supervisor.aborts, faults=plan.describe(),
                    performances=instance.performance_count,
                    time=result.time, trace=format_trace(result.tracer),
                    events=result.tracer.snapshot())


# ---------------------------------------------------------------------------
# Chatroom under churn
# ---------------------------------------------------------------------------

def run_chaos_chatroom(seed: int, n: int = 4, rounds: int = 4,
                       plan: FaultPlan | None = None,
                       join_window: float = 3.0,
                       horizon: float = 40.0,
                       journal: Any = None) -> ChaosRun:
    """One chaos chatroom: open membership, departures, seeded churn.

    The host sits on the hub of a star, member *i* on leaf *i*.  Members
    arrive staggered — deliberately wider than the join window, so some
    arrive *after* the room sealed and must walk away rather than wedge
    the instance with a hostless second performance.  Each member draws a
    planned ``stay`` (how many rounds before departing); the fault plan
    adds crashes, a partition that may never heal, and latency/drop
    windows on top.

    Invariants checked per run: an aborted performance implies the host
    was killed; every surviving member's log is a prefix-consistent
    subsequence of the host's numbered messages (strictly increasing
    rounds, each with its round's payload).
    """
    scheduler = Scheduler(seed=seed)
    topology = star(n)
    placement: dict[Hashable, Any] = {"H": "hub"}
    placement.update({("M", i): ("leaf", i) for i in range(1, n + 1)})
    transport = NetworkTransport(topology, placement)
    scheduler.transport = transport
    if journal is not None:
        journal.attach(scheduler)

    script = make_chatroom(max_members=n, join_window=join_window,
                           rounds=rounds)
    instance = script.instance(scheduler, name="chaos_chatroom",
                               seal_policy=SealPolicy.MANUAL)
    aborted = {"flag": False}
    supervisor = instance.supervise(
        on_abort=lambda _performance: aborted.__setitem__("flag", True))

    rng = random.Random(seed)
    if plan is None:
        plan = chatroom_plan(rng, n, join_window, horizon)
    plan.install(scheduler, transport=transport)

    def room_open() -> bool:
        # The chatroom is a one-performance script: a member arriving
        # after the room sealed (or after an abort tore it down) must not
        # enroll — its request would immediately start a hostless second
        # performance that can never seal.  It walks away instead.
        if aborted["flag"]:
            return False
        current = instance.current
        if current is not None:
            return not current.sealed
        return not instance.performances

    def host_process() -> Body:
        try:
            out = yield from instance.enroll("host")
        except PerformanceAborted:
            return "aborted"
        return out["delivered"]

    def member_process(i: int, stagger: float, stay: int) -> Body:
        yield Delay(stagger)
        if not room_open():
            return "missed"
        try:
            out = yield from instance.enroll(
                "member", stay=stay,
                withdraw_when=lambda: not room_open())
        except PerformanceAborted:
            return "aborted"
        if out is None:
            return "withdrawn"
        return out["log"]

    scheduler.spawn("H", host_process())
    for i in range(1, n + 1):
        stagger = round(rng.uniform(0.0, 1.6 * join_window), 3)
        stay = rng.randint(1, rounds + 1)
        scheduler.spawn(("M", i), member_process(i, stagger, stay))

    result = scheduler.run()
    check_residue(scheduler, seed, (instance,))
    scheduler.reap()

    outcome = "aborted" if supervisor.aborts else "completed"
    if outcome == "aborted":
        if "H" not in result.killed:
            _fail(seed, "performance aborted but the host survived")
    for i in range(1, n + 1):
        name = ("M", i)
        if name in result.killed:
            continue
        log = result.results.get(name)
        if not isinstance(log, list):
            continue  # "missed" / "withdrawn" / "aborted"
        last_round = -1
        for entry in log:
            r, payload = entry
            if r <= last_round:
                _fail(seed, f"member {i} log rounds not increasing: {log!r}")
            if payload != f"news-{r}":
                _fail(seed, f"member {i} received corrupt round {r}: "
                            f"{entry!r}")
            last_round = r
    if journal is not None:
        journal.finish(outcome)
    return ChaosRun(seed=seed, outcome=outcome, results=result.results,
                    killed=result.killed, crashes=supervisor.crashes,
                    aborts=supervisor.aborts, faults=plan.describe(),
                    performances=instance.performance_count,
                    time=result.time, trace=format_trace(result.tracer),
                    events=result.tracer.snapshot())


# ---------------------------------------------------------------------------
# The soak loop
# ---------------------------------------------------------------------------

_RUNNERS = {"broadcast": run_chaos_broadcast, "lock": run_chaos_lock,
            "chatroom": run_chaos_chatroom}


@dataclasses.dataclass(slots=True)
class SoakReport:
    """Aggregate of a whole soak (one seed per run, seeds consecutive)."""

    script: str
    runs: int
    base_seed: int
    outcomes: Counter
    crashes: int = 0
    aborts: int = 0
    performances: int = 0
    faults: int = 0
    #: Formatted trace of the base-seed run, for ``--trace-out``.
    base_trace: str = ""

    def lines(self) -> list[str]:
        """Human-readable summary for the CLI."""
        share = ", ".join(f"{name}: {count}"
                          for name, count in sorted(self.outcomes.items()))
        return kv_lines(
            f"chaos soak: {self.script}, {self.runs} runs "
            f"(seeds {self.base_seed}..{self.base_seed + self.runs - 1})",
            [
                ("outcomes", share),
                ("performances", self.performances),
                ("role crashes",
                 f"{self.crashes} (aborted performances: {self.aborts})"),
                ("fault events", self.faults),
                ("residue", "none (checked after every run)"),
            ])


def soak(script: str = "broadcast", runs: int = 100, seed: int = 0,
         **options: Any) -> SoakReport:
    """Run ``runs`` chaos runs with consecutive seeds; raise on any residue.

    ``options`` are forwarded to the per-run function
    (:func:`run_chaos_broadcast` / :func:`run_chaos_lock` /
    :func:`run_chaos_chatroom`).
    """
    try:
        runner = _RUNNERS[script]
    except KeyError:
        raise ChaosInvariantError(
            f"unknown chaos script {script!r}; choose from {SCRIPTS}"
        ) from None
    report = SoakReport(script=script, runs=runs, base_seed=seed,
                        outcomes=Counter())
    for offset in range(runs):
        run = runner(seed + offset, **options)
        if offset == 0:
            report.base_trace = run.trace
        report.outcomes[run.outcome] += 1
        report.crashes += run.crashes
        report.aborts += run.aborts
        report.performances += run.performances
        report.faults += len(run.faults)
    return report


def verify_determinism(script: str = "broadcast", seed: int = 0,
                       **options: Any) -> bool:
    """Run one seed twice; True iff the formatted traces are identical."""
    runner = _RUNNERS[script]
    first = runner(seed, **options)
    second = runner(seed, **options)
    return first.trace == second.trace
