"""Systematic fault-space exploration with counterexample shrinking.

The chaos soak (:mod:`repro.faults.soak`) samples fault schedules from a
seed — good at volume, blind to structure.  This module explores the
fault space *systematically*:

1. **Probe.**  Run the scenario once fault-free with an
   :class:`InjectionProbe` attached (the same duck-typed ``journal``
   protocol the durable recorder uses), enumerating injection points
   from the instrumentation stream: every rendezvous commit, enrollment
   step, recovery decision, and timer fire — the exact frame boundaries
   the journal would record.

2. **Enumerate.**  Generate fault schedules anchored at those points —
   crash-at-point × process, partition windows with and without heal,
   timer-adjacent latency/drop windows, and
   :class:`~repro.faults.plan.JournalCorruptionPlan` variants — under a
   configurable budget.  The frontier is *stratified*: candidates are
   grouped by (family, target), shuffled with the exploration seed, and
   emitted round-robin, so every process and link gets early coverage
   instead of whichever family happens to enumerate first.  Past the
   singles, seeded depth-2/3 composites keep the frontier endless.

3. **Check.**  Every run is judged by a pluggable oracle set: ``residue``
   (the kernel must end empty — :func:`~repro.faults.soak.check_residue`),
   ``abort`` (critical-crash abort semantics), ``convergence`` (the run
   must terminate without kernel errors), and ``replay`` (a journaled run
   must resume byte-identically through
   :class:`~repro.persist.resume.ReplayValidator`).  An error no selected
   oracle owns still fails the run — attributed to ``convergence`` — so
   deselecting oracles never turns a crash into a pass.

4. **Shrink.**  On the first failure, delta-debug the schedule down to a
   locally minimal counterexample: repeated ddmin passes over the fault
   events until a full single-event sweep removes nothing (1-minimality:
   every remaining event is necessary), or halving a corruption plan's
   intensity to its floor.  The result serializes to replayable JSON
   (``--replay-plan``) plus a one-command repro line.

Everything is deterministic: the same scenario, seed and budget produce
the identical schedule sequence, verdicts and coverage counters — pinned
by test.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import os
import random
import tempfile
from collections import Counter
from typing import Any, Callable, Hashable, Iterator

from ..errors import ChaosInvariantError, FaultPlanError, ReproError
from ..obs.metrics import MetricsRegistry
from ..persist.record import SNAPSHOT_EVERY, JournalRecorder
from ..persist.resume import resume
from ..runtime import EventKind, Scheduler, Sink, TeeSink
from .plan import CORRUPTION_MODES, FaultPlan, JournalCorruptionPlan
from .reporting import kv_lines
from .soak import run_chaos_broadcast, run_chaos_chatroom, run_chaos_lock

#: Injection-point kinds, in the order the probe reports them.
POINT_COMMIT = "commit"
POINT_ENROLL = "enroll"
POINT_RECOVERY = "recovery"
POINT_TIMER = "timer"

#: Oracle names accepted by :func:`explore` (and the ``--oracle`` flag).
DEFAULT_ORACLES = ("residue", "abort", "convergence", "replay")


# ---------------------------------------------------------------------------
# Phase 1: probing a fault-free run for injection points
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True, slots=True)
class InjectionPoint:
    """One instant the instrumentation stream exposes for injection.

    ``subject`` is the ``repr`` of the acting process (or committed pair)
    — repr, not the object, so points are hashable and totally ordered
    regardless of what process names a scenario uses.
    """

    time: float
    kind: str
    subject: str


class InjectionProbe(Sink):
    """Instrumentation sink that enumerates a run's injection points.

    Duck-types the scenario runners' ``journal`` protocol
    (``attach(scheduler)`` / ``finish(outcome)``), so it attaches at the
    exact spot the durable recorder would — the probe sees the same
    stream the journal records, and its ``frames`` estimate counts the
    frame boundaries that stream would produce (header and end frames
    included, one snapshot per :data:`~repro.persist.record.SNAPSHOT_EVERY`
    commits).
    """

    def __init__(self) -> None:
        self.points: list[InjectionPoint] = []
        self._seen: set[tuple[float, str, str]] = set()
        self.frames = 2  # header + end
        self.commits = 0
        self.outcome: str | None = None
        self.scheduler: Scheduler | None = None

    def attach(self, scheduler: Scheduler) -> "InjectionProbe":
        if self.scheduler is not None:
            raise FaultPlanError("this injection probe is already attached")
        self.scheduler = scheduler
        scheduler.sink = self if not scheduler.sink \
            else TeeSink(scheduler.sink, self)
        scheduler.tracer.add_listener(self.on_event)
        return self

    def _note(self, kind: str, time: float, subject: Any) -> None:
        key = (time, kind, repr(subject))
        if key not in self._seen:
            self._seen.add(key)
            self.points.append(InjectionPoint(time=time, kind=kind,
                                              subject=key[2]))

    def on_commit(self, time: float, sender: Hashable, receiver: Hashable,
                  board_size: int, waiter_count: int) -> None:
        self.commits += 1
        self._note(POINT_COMMIT, time, (sender, receiver))

    def on_decision(self, time: float, kind: str, subject: Hashable,
                    payload: Any) -> None:
        self.frames += 1
        if kind == "timer":
            self._note(POINT_TIMER, time, subject)

    def on_event(self, event: Any) -> None:
        self.frames += 1
        if event.kind in (EventKind.ENROLL_REQUEST, EventKind.ENROLL_ACCEPT):
            self._note(POINT_ENROLL, event.time, event.process)
        elif event.kind is EventKind.RECOVERY:
            self._note(POINT_RECOVERY, event.time, event.process)

    def finish(self, outcome: str) -> None:
        self.outcome = outcome
        self.frames += self.commits // SNAPSHOT_EVERY
        self.points.sort(key=lambda p: (p.time, p.kind, p.subject))


# ---------------------------------------------------------------------------
# Scenario adapters: what the explorer may legally do to each scenario
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class Scenario:
    """Exploration contract of one chaos scenario.

    ``crash_after`` maps a process to the earliest *strict* crash time:
    plan timers are installed before any process spawns, so at equal
    timestamps a crash fires before the victim's own timer — a crash at
    exactly the seal instant would kill the critical role pre-seal,
    which is outside the scripted system's contract (an unsealable
    performance), not a chaos finding.  ``heal_required`` excludes
    never-healing partitions for scenarios whose roles retry forever;
    ``transport_faults`` gates latency/drop windows to scenarios whose
    roles are written to absorb them.
    """

    name: str
    runner: Callable[..., Any]
    processes: tuple[Hashable, ...]
    critical: frozenset
    links: tuple[tuple[Hashable, Hashable], ...]
    crash_after: dict[Hashable, float]
    heal_required: bool
    transport_faults: bool
    horizon: float


SCENARIOS: dict[str, Scenario] = {
    "broadcast": Scenario(
        name="broadcast", runner=run_chaos_broadcast,
        processes=("S",) + tuple(("R", i) for i in range(1, 5)),
        critical=frozenset({"S"}),
        links=tuple(("hub", ("leaf", i)) for i in range(1, 5)),
        crash_after={"S": 3.0},  # the enroll window: no pre-seal sender kill
        heal_required=True, transport_faults=True, horizon=30.0),
    "lock": Scenario(
        name="lock", runner=run_chaos_lock,
        processes=tuple(("client", i) for i in range(1, 5)),
        critical=frozenset(),
        # Managers hold the lock tables and must outlive the run; no link
        # or transport faults either — the lock protocol has no retry
        # story, which is the scenario's documented contract.
        links=(), crash_after={}, heal_required=True,
        transport_faults=False, horizon=12.0),
    "chatroom": Scenario(
        name="chatroom", runner=run_chaos_chatroom,
        processes=("H",) + tuple(("M", i) for i in range(1, 5)),
        critical=frozenset({"H"}),
        links=tuple(("hub", ("leaf", i)) for i in range(1, 5)),
        crash_after={"H": 3.0},  # the join window
        heal_required=False,  # members depart on timeout; no heal needed
        transport_faults=True, horizon=40.0),
}


# ---------------------------------------------------------------------------
# Fault schedules: the unit of exploration
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class FaultSchedule:
    """One candidate: a fault plan *or* a journal corruption, never both."""

    family: str
    plan: FaultPlan | None = None
    corruption: JournalCorruptionPlan | None = None

    def describe(self) -> list[str]:
        if self.corruption is not None:
            return [self.corruption.describe()]
        return self.plan.describe() if self.plan is not None else []

    def to_jsonable(self) -> dict[str, Any]:
        data: dict[str, Any] = {"family": self.family}
        if self.plan is not None:
            data["plan"] = self.plan.to_jsonable()
        if self.corruption is not None:
            data["corruption"] = self.corruption.to_jsonable()
        return data

    @classmethod
    def from_jsonable(cls, data: dict[str, Any]) -> "FaultSchedule":
        if not isinstance(data, dict):
            raise FaultPlanError(
                f"fault schedule must be a mapping, got {data!r}")
        plan = data.get("plan")
        corruption = data.get("corruption")
        return cls(
            family=data.get("family", "unknown"),
            plan=FaultPlan.from_jsonable(plan) if plan is not None else None,
            corruption=(JournalCorruptionPlan.from_jsonable(corruption)
                        if corruption is not None else None))


def _candidate_singles(scenario: Scenario,
                       points: list[InjectionPoint]
                       ) -> dict[tuple[str, str], list[FaultSchedule]]:
    """Single-fault candidates anchored at the probe's points, grouped
    by ``(family, target)`` for stratified frontier ordering."""
    times = sorted({p.time for p in points})
    timer_times = sorted({p.time for p in points
                          if p.kind == POINT_TIMER and p.time > 0})
    groups: dict[tuple[str, str], list[FaultSchedule]] = {}

    def add(family: str, key: str, plan: FaultPlan) -> None:
        groups.setdefault((family, key), []).append(
            FaultSchedule(family=family, plan=plan))

    for process in scenario.processes:
        floor = scenario.crash_after.get(process, 0.0)
        for t in times:
            if t > floor:
                add("crash", repr(process), FaultPlan().crash(t, process))
    spans = (1.0, max(2.5, scenario.horizon / 8.0))
    for a, b in scenario.links:
        key = repr((a, b))
        for t in times:
            if t <= 0:
                continue
            for span in spans:
                add("partition", key,
                    FaultPlan().partition(t, a, b,
                                          heal_at=round(t + span, 3)))
            if not scenario.heal_required:
                add("partition", key, FaultPlan().partition(t, a, b))
    if scenario.transport_faults:
        for t in timer_times:
            add("slow", "window",
                FaultPlan().slow(t, 4.0, until=round(t + 2.0, 3)))
            add("drop", "window",
                FaultPlan().drop(t, 2, until=round(t + 2.0, 3)))
    return groups


def _frontier(scenario: Scenario, points: list[InjectionPoint],
              rng: random.Random, budget: int,
              include_corruption: bool) -> Iterator[FaultSchedule]:
    """Seeded, stratified, endless candidate stream.

    Singles first — round-robin over the shuffled (family, target)
    groups, capped at half the budget so corruption and composite
    schedules are always reached — then the corruption grid, then
    endless seeded depth-2/3 composites drawn from the singles pool.
    """
    groups = _candidate_singles(scenario, points)
    buckets: list[list[FaultSchedule]] = []
    for key in sorted(groups):
        bucket = list(groups[key])
        rng.shuffle(bucket)
        buckets.append(bucket)
    rng.shuffle(buckets)
    pool = [schedule for bucket in buckets for schedule in bucket]
    single_cap = max(budget // 2, 24)
    emitted = 0
    queues = [list(bucket) for bucket in buckets]
    while emitted < single_cap and any(queues):
        for queue in queues:
            if queue and emitted < single_cap:
                yield queue.pop(0)
                emitted += 1
    if include_corruption:
        for mode in CORRUPTION_MODES:
            for intensity in (1, 8, 32):
                yield FaultSchedule(
                    family="corruption",
                    corruption=JournalCorruptionPlan(
                        seed=rng.randrange(1 << 30), mode=mode,
                        intensity=intensity))
    if not pool:
        return
    while True:
        depth = 2 + (rng.random() < 0.4)
        chosen = [pool[rng.randrange(len(pool))] for _ in range(depth)]
        events = [event for schedule in chosen
                  for event in schedule.plan.events]
        yield FaultSchedule(family="composite", plan=FaultPlan(events))


# ---------------------------------------------------------------------------
# Phase 3: executing one schedule and judging it
# ---------------------------------------------------------------------------

@dataclasses.dataclass(slots=True)
class RunOutcome:
    """Everything one schedule execution produced, for the oracles."""

    schedule: FaultSchedule
    run: Any = None                    # the scenario's ChaosRun, if it ran
    error: ReproError | None = None    # error raised by the faulted run
    resume_report: Any = None          # ResumeReport from the replay leg
    resume_error: ReproError | None = None
    runs: int = 0                      # scenario executions this cost


def _registry_for(scenario: Scenario) -> dict[str, Callable[..., Any]]:
    """A resume registry whose runner decodes the journaled fault plan.

    The recorder stores the plan in the journal header's ``options`` as
    plain JSON; resume passes header options back as keyword arguments,
    so the wrapper rebuilds the :class:`FaultPlan` before delegating.
    """
    def wrapper(seed: int, plan: Any = None, journal: Any = None,
                **options: Any) -> Any:
        if plan is not None and not isinstance(plan, FaultPlan):
            plan = FaultPlan.from_jsonable(plan)
        return scenario.runner(seed, plan=plan, journal=journal, **options)
    return {scenario.name: wrapper}


def execute_schedule(scenario: Scenario, seed: int, schedule: FaultSchedule,
                     *, replay: bool, workdir: str | None,
                     tag: str) -> RunOutcome:
    """Run ``schedule`` against ``scenario`` at ``seed``.

    Plan schedules run the scenario under the plan — journaled when the
    replay oracle is active, followed by a full resume.  Corruption
    schedules journal a fault-free run, corrupt the file, and resume it:
    the attack targets the durability layer, not the virtual world.
    """
    outcome = RunOutcome(schedule=schedule)
    if schedule.corruption is not None:
        path = os.path.join(workdir, f"{tag}.journal")
        recorder = JournalRecorder(path, seed=seed, scenario=scenario.name,
                                   options={"plan":
                                            FaultPlan().to_jsonable()})
        try:
            outcome.run = scenario.runner(seed, plan=FaultPlan(),
                                          journal=recorder)
        except ReproError as err:
            recorder.close()
            outcome.error = err
            outcome.runs = 1
            return outcome
        outcome.runs = 1
        schedule.corruption.apply(path)
    else:
        plan = schedule.plan if schedule.plan is not None else FaultPlan()
        if not replay:
            outcome.runs = 1
            try:
                outcome.run = scenario.runner(seed, plan=plan)
            except ReproError as err:
                outcome.error = err
            return outcome
        path = os.path.join(workdir, f"{tag}.journal")
        recorder = JournalRecorder(path, seed=seed, scenario=scenario.name,
                                   options={"plan": plan.to_jsonable()})
        outcome.runs = 1
        try:
            outcome.run = scenario.runner(seed, plan=plan, journal=recorder)
        except ReproError as err:
            recorder.close()
            outcome.error = err
            return outcome
    try:
        outcome.resume_report = resume(path,
                                       registry=_registry_for(scenario))
    except ReproError as err:
        outcome.resume_error = err
    outcome.runs += 1
    return outcome


def _owner_of(error: ReproError) -> str:
    """Which oracle owns ``error``: the failure's attribution."""
    category = getattr(error, "category", None)
    if category == "residue":
        return "residue"
    if category == "semantics":
        return "abort"
    return "convergence"


def evaluate(scenario: Scenario, outcome: RunOutcome,
             oracles: tuple[str, ...]) -> list[tuple[str, str]]:
    """Judge one execution; ``(oracle, detail)`` per violated oracle.

    Errors raised by the faulted run *always* fail it: if the owning
    oracle is deselected the failure is attributed to ``convergence``
    instead — deselecting oracles narrows attribution, never safety.
    """
    failures: list[tuple[str, str]] = []
    if outcome.error is not None:
        owner = _owner_of(outcome.error)
        if owner not in oracles:
            owner = "convergence"
        failures.append((owner, str(outcome.error)))
    run = outcome.run
    if ("abort" in oracles and run is not None
            and run.outcome == "aborted" and scenario.critical
            and not any(name in scenario.critical for name in run.killed)):
        failures.append(("abort",
                         f"aborted without a critical-process kill "
                         f"(killed: {run.killed!r})"))
    if "replay" in oracles or outcome.resume_error is not None:
        if outcome.resume_error is not None:
            failures.append(("replay" if "replay" in oracles
                             else "convergence",
                             str(outcome.resume_error)))
        elif (outcome.resume_report is not None and run is not None
                and outcome.resume_report.outcome != run.outcome):
            failures.append(
                ("replay", f"resume outcome "
                           f"{outcome.resume_report.outcome!r} != recorded "
                           f"{run.outcome!r}"))
    return failures


# ---------------------------------------------------------------------------
# Phase 4: delta-debugging shrink
# ---------------------------------------------------------------------------

def shrink(scenario: Scenario, seed: int, schedule: FaultSchedule,
           oracle: str, oracles: tuple[str, ...], *, replay: bool,
           workdir: str | None) -> tuple[FaultSchedule, str, int]:
    """Minimize ``schedule`` while the same oracle keeps failing.

    Plan schedules go through repeated ddmin passes (chunk sizes from
    ``len // 2`` down to 1); the loop only stops after a full
    single-event sweep removes nothing, so the result is 1-minimal:
    dropping *any* remaining event makes the failure disappear.
    Corruption schedules shrink by halving intensity.  Returns the
    minimized schedule, the detail of its failure, and the number of
    scenario executions spent.
    """
    runs = 0
    last_detail = ""

    def still_fails(candidate: FaultSchedule) -> bool:
        nonlocal runs, last_detail
        outcome = execute_schedule(scenario, seed, candidate, replay=replay,
                                   workdir=workdir, tag=f"shrink-{runs}")
        runs += outcome.runs
        for name, detail in evaluate(scenario, outcome, oracles):
            if name == oracle:
                last_detail = detail
                return True
        return False

    if schedule.corruption is not None:
        current = schedule.corruption
        while current.intensity > 1:
            candidate = dataclasses.replace(current,
                                            intensity=current.intensity // 2)
            if not still_fails(dataclasses.replace(
                    schedule, corruption=candidate)):
                break
            current = candidate
        return (dataclasses.replace(schedule, corruption=current),
                last_detail, runs)

    events = list(schedule.plan.events) if schedule.plan is not None else []

    def make(subset: list) -> FaultSchedule:
        return dataclasses.replace(schedule, plan=FaultPlan(subset))

    changed = True
    while changed and len(events) > 1:
        changed = False
        size = len(events) // 2
        while size >= 1:
            index = 0
            while index < len(events) and len(events) > 1:
                candidate = events[:index] + events[index + size:]
                if candidate and still_fails(make(candidate)):
                    events = candidate
                    changed = True
                else:
                    index += size
            size //= 2
    return make(events), last_detail, runs


# ---------------------------------------------------------------------------
# Results: counterexamples and the exploration report
# ---------------------------------------------------------------------------

@dataclasses.dataclass(slots=True)
class Counterexample:
    """A minimized failing schedule, replayable from its JSON form."""

    scenario: str
    seed: int
    oracle: str
    detail: str
    schedule: FaultSchedule
    original_events: int
    shrink_runs: int

    def to_jsonable(self) -> dict[str, Any]:
        return {"scenario": self.scenario, "seed": self.seed,
                "oracle": self.oracle, "detail": self.detail,
                "schedule": self.schedule.to_jsonable(),
                "original_events": self.original_events,
                "shrink_runs": self.shrink_runs}

    def repro_command(self, path: str) -> str:
        """The one command that replays this exact failure."""
        return (f"PYTHONPATH=src python -m repro chaos {self.scenario} "
                f"--explore --replay-plan {path}")


@dataclasses.dataclass(slots=True)
class ExploreReport:
    """Everything one exploration established (deterministic per seed)."""

    scenario: str
    seed: int
    budget: int
    oracles: tuple[str, ...]
    points: Counter = dataclasses.field(default_factory=Counter)
    frames: int = 0
    schedules: int = 0
    runs: int = 0
    shrink_runs: int = 0
    families: Counter = dataclasses.field(default_factory=Counter)
    verdicts: Counter = dataclasses.field(default_factory=Counter)
    oracle_failures: Counter = dataclasses.field(default_factory=Counter)
    #: One line per examined schedule — the determinism pin's witness.
    schedule_log: list[str] = dataclasses.field(default_factory=list)
    counterexample: Counterexample | None = None
    base_trace: str = ""
    metrics: MetricsRegistry | None = None

    @property
    def ok(self) -> bool:
        return self.counterexample is None

    def lines(self) -> list[str]:
        """Human-readable summary for the CLI."""
        point_total = sum(self.points.values())
        point_share = ", ".join(f"{kind}: {count}" for kind, count
                                in sorted(self.points.items()))
        family_share = ", ".join(f"{name}: {count}" for name, count
                                 in sorted(self.families.items()))
        rows: list[tuple[str, Any]] = [
            ("oracles", ", ".join(self.oracles)),
            ("points", f"{point_total} ({point_share})"),
            ("frames", self.frames),
            ("schedules", f"{self.schedules} ({family_share})"),
            ("runs", f"{self.runs} ({self.shrink_runs} during shrink)"),
            ("verdicts", f"pass: {self.verdicts.get('pass', 0)}, "
                         f"fail: {self.verdicts.get('fail', 0)}"),
        ]
        if self.counterexample is None:
            rows.append(("result", "every schedule passed every oracle"))
        else:
            ce = self.counterexample
            minimized = "; ".join(ce.schedule.describe())
            rows.append(("failure", f"{ce.oracle}: {ce.detail}"))
            rows.append(("minimized",
                         f"{len(ce.schedule.plan or ())} event(s) "
                         f"(from {ce.original_events}): {minimized}"
                         if ce.schedule.plan is not None else minimized))
        return kv_lines(
            f"fault exploration: {self.scenario}, budget {self.budget} "
            f"(seed {self.seed})", rows)


def record_exploration(report: ExploreReport,
                       registry: MetricsRegistry) -> MetricsRegistry:
    """Publish a report's coverage counters into ``registry``."""
    for kind, count in sorted(report.points.items()):
        registry.counter("explore_points_total", label=kind).inc(count)
    registry.counter("explore_frames_total").inc(report.frames)
    for family, count in sorted(report.families.items()):
        registry.counter("explore_schedules_total", label=family).inc(count)
    registry.counter("explore_runs_total").inc(report.runs)
    registry.counter("explore_shrink_runs_total").inc(report.shrink_runs)
    for verdict, count in sorted(report.verdicts.items()):
        registry.counter("explore_verdicts_total", label=verdict).inc(count)
    for oracle, count in sorted(report.oracle_failures.items()):
        registry.counter("explore_oracle_failures_total",
                         label=oracle).inc(count)
    return registry


# ---------------------------------------------------------------------------
# The explorer
# ---------------------------------------------------------------------------

def explore(scenario: str = "broadcast", seed: int = 0, budget: int = 100,
            oracles: tuple[str, ...] | None = None, minimize: bool = True,
            workdir: str | None = None,
            metrics: MetricsRegistry | None = None,
            **options: Any) -> ExploreReport:
    """Systematically explore ``scenario``'s fault space at ``seed``.

    Runs the probe, then up to ``budget`` candidate schedules, stopping
    at the first oracle violation (shrunk to a locally minimal
    counterexample when ``minimize``).  ``options`` forward to the
    scenario runner (sizing knobs).  Deterministic: same arguments, same
    report.
    """
    try:
        sc = SCENARIOS[scenario]
    except KeyError:
        raise ChaosInvariantError(
            f"unknown exploration scenario {scenario!r}; choose from "
            f"{tuple(SCENARIOS)}") from None
    oracle_names = tuple(oracles) if oracles else DEFAULT_ORACLES
    for name in oracle_names:
        if name not in DEFAULT_ORACLES:
            raise ChaosInvariantError(
                f"unknown oracle {name!r}; choose from {DEFAULT_ORACLES}")
    replay = "replay" in oracle_names
    report = ExploreReport(scenario=scenario, seed=seed, budget=budget,
                           oracles=oracle_names)

    probe = InjectionProbe()
    base = sc.runner(seed, plan=FaultPlan(), journal=probe, **options)
    report.runs += 1
    report.base_trace = base.trace
    report.frames = probe.frames
    report.points = Counter(point.kind for point in probe.points)

    rng = random.Random(seed)
    frontier = _frontier(sc, probe.points, rng, budget,
                         include_corruption=replay)
    cleanup: tempfile.TemporaryDirectory | None = None
    if replay and workdir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-explore-")
        workdir = cleanup.name
    try:
        for index, schedule in enumerate(itertools.islice(frontier, budget)):
            outcome = execute_schedule(sc, seed, schedule, replay=replay,
                                       workdir=workdir, tag=f"run-{index}")
            report.runs += outcome.runs
            report.schedules += 1
            report.families[schedule.family] += 1
            description = "; ".join(schedule.describe())
            failures = evaluate(sc, outcome, oracle_names)
            if not failures:
                report.verdicts["pass"] += 1
                report.schedule_log.append(f"#{index} {description} -> pass")
                continue
            report.verdicts["fail"] += 1
            oracle, detail = failures[0]
            report.oracle_failures[oracle] += 1
            report.schedule_log.append(
                f"#{index} {description} -> FAIL {oracle}")
            original_events = (len(schedule.plan)
                               if schedule.plan is not None else 0)
            minimized, shrink_runs = schedule, 0
            if minimize:
                minimized, shrunk_detail, shrink_runs = shrink(
                    sc, seed, schedule, oracle, oracle_names,
                    replay=replay, workdir=workdir)
                if shrunk_detail:
                    detail = shrunk_detail
            report.shrink_runs = shrink_runs
            report.runs += shrink_runs
            report.counterexample = Counterexample(
                scenario=scenario, seed=seed, oracle=oracle, detail=detail,
                schedule=minimized, original_events=original_events,
                shrink_runs=shrink_runs)
            break
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    report.metrics = record_exploration(
        report, metrics if metrics is not None else MetricsRegistry())
    return report


# ---------------------------------------------------------------------------
# Replaying a saved counterexample
# ---------------------------------------------------------------------------

@dataclasses.dataclass(slots=True)
class ReplayCheck:
    """Result of re-executing a saved counterexample file."""

    scenario: str
    seed: int
    schedule: FaultSchedule
    failures: list[tuple[str, str]]

    @property
    def reproduced(self) -> bool:
        return bool(self.failures)

    def lines(self) -> list[str]:
        rows: list[tuple[str, Any]] = [
            ("schedule", "; ".join(self.schedule.describe()) or "(empty)"),
        ]
        if self.failures:
            for oracle, detail in self.failures:
                rows.append(("failure", f"{oracle}: {detail}"))
        else:
            rows.append(("result", "schedule passed every oracle"))
        return kv_lines(
            f"replay: {self.scenario} seed {self.seed}", rows)


def check_saved_schedule(path: str,
                         oracles: tuple[str, ...] | None = None
                         ) -> ReplayCheck:
    """Re-execute the counterexample JSON at ``path`` (``--replay-plan``).

    Accepts the file :func:`explore` writes; returns the oracle verdicts
    of the re-execution, so a fixed bug shows up as ``reproduced`` being
    False.
    """
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise ChaosInvariantError(f"{path}: not a counterexample file")
    scenario_name = data.get("scenario")
    if scenario_name not in SCENARIOS:
        raise ChaosInvariantError(
            f"{path}: unknown scenario {scenario_name!r}")
    sc = SCENARIOS[scenario_name]
    seed = data.get("seed", 0)
    schedule = FaultSchedule.from_jsonable(data.get("schedule", {}))
    oracle_names = tuple(oracles) if oracles else DEFAULT_ORACLES
    replay = ("replay" in oracle_names
              or schedule.corruption is not None)
    with tempfile.TemporaryDirectory(prefix="repro-replay-") as workdir:
        outcome = execute_schedule(sc, seed, schedule, replay=replay,
                                   workdir=workdir, tag="replay")
        failures = evaluate(sc, outcome, oracle_names)
    return ReplayCheck(scenario=scenario_name, seed=seed, schedule=schedule,
                       failures=failures)
