"""Deterministic fault plans: seed-reproducible schedules of bad luck.

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent` records, each
pinned to a *virtual* time.  Installing a plan on a scheduler arms one timer
per event; because the scheduler's clock is discrete and the plan is plain
data, the same seed and plan always produce bit-for-bit identical traces —
a chaos run that finds a bug *is* its own reproduction recipe.

Event kinds:

``CRASH``
    Kill a process (:meth:`Scheduler.kill`).  A crash aimed at a process
    that never spawned or already finished is recorded as not applied —
    plans may legitimately outlive their targets.
``PARTITION`` / ``HEAL``
    Cut or restore one topology link through the
    :class:`~repro.net.transport.NetworkTransport`.  Partitions act at
    matching time: a rendezvous across a cut link simply never commits
    until the link heals.
``SLOW`` / ``DROP``
    Set the transport's latency factor (congestion spike) or drop-retry
    count (lossy link forcing retransmissions).  Restore by scheduling a
    later ``SLOW`` with factor 1.0 / ``DROP`` with 0 retries.

Every applied event is emitted into the trace as
:data:`~repro.runtime.EventKind.FAULT`, so fault schedules are visible in
(and covered by) trace-equality determinism checks.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Hashable, Iterable, Iterator, Sequence, TYPE_CHECKING

from ..errors import FaultPlanError
from ..runtime import EventKind

if TYPE_CHECKING:  # pragma: no cover
    from ..net.transport import NetworkTransport
    from ..runtime.scheduler import Scheduler, TimerHandle

# -- event kinds ----------------------------------------------------------

CRASH = "crash"
PARTITION = "partition"
HEAL = "heal"
SLOW = "slow"
DROP = "drop"

KINDS = (CRASH, PARTITION, HEAL, SLOW, DROP)

#: Kinds that act through the network transport.
_TRANSPORT_KINDS = frozenset({PARTITION, HEAL, SLOW, DROP})


def _target_to_jsonable(value: Any) -> Any:
    """Tuples survive a JSON round trip as lists; encode them recursively."""
    if isinstance(value, tuple):
        return [_target_to_jsonable(item) for item in value]
    return value


def _target_from_jsonable(value: Any) -> Any:
    """Invert :func:`_target_to_jsonable`: JSON lists become tuples again.

    Process names and topology nodes in this codebase are hashables built
    from tuples (``("R", 2)``, ``("leaf", 3)``), never lists, so the
    list→tuple restoration is unambiguous.
    """
    if isinstance(value, list):
        return tuple(_target_from_jsonable(item) for item in value)
    return value


@dataclasses.dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled misfortune.

    ``target`` is a process name for ``CRASH`` and an ``(a, b)`` node pair
    for ``PARTITION``/``HEAL``; ``value`` is the latency factor for
    ``SLOW`` and the retry count for ``DROP``.
    """

    time: float
    kind: str
    target: Any = None
    value: Any = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise FaultPlanError(f"unknown fault kind {self.kind!r}; "
                                 f"choose from {KINDS}")
        if self.time < 0:
            raise FaultPlanError(f"fault time must be >= 0, got {self.time}")
        if self.kind in (PARTITION, HEAL):
            # Fail at construction, not at fire time inside a timer
            # callback with an opaque unpack error.
            if (not isinstance(self.target, tuple)
                    or len(self.target) != 2):
                raise FaultPlanError(
                    f"{self.kind} target must be a 2-tuple of nodes, "
                    f"got {self.target!r}")

    def describe(self) -> str:
        """One-line human-readable rendering (CLI and traces)."""
        if self.kind == CRASH:
            return f"t={self.time:g} crash {self.target!r}"
        if self.kind in (PARTITION, HEAL):
            a, b = self.target
            return f"t={self.time:g} {self.kind} {a!r}--{b!r}"
        if self.kind == SLOW:
            return f"t={self.time:g} latency x{self.value:g}"
        return f"t={self.time:g} drop retries={self.value}"

    def to_jsonable(self) -> dict[str, Any]:
        """Plain-JSON encoding (tuple targets become nested lists)."""
        return {"time": self.time, "kind": self.kind,
                "target": _target_to_jsonable(self.target),
                "value": self.value}

    @classmethod
    def from_jsonable(cls, data: dict[str, Any]) -> "FaultEvent":
        """Rebuild an event from :meth:`to_jsonable` output (validating)."""
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault event must be a mapping, "
                                 f"got {data!r}")
        return cls(time=data.get("time", 0.0), kind=data.get("kind", ""),
                   target=_target_from_jsonable(data.get("target")),
                   value=data.get("value"))


class FaultPlan:
    """An ordered, deterministic schedule of fault events.

    Build one with the fluent methods (:meth:`crash`, :meth:`partition`,
    ...), generate one with :meth:`random`, then :meth:`install` it on a
    scheduler before (or during) a run.  Events fire in ``(time,
    insertion)`` order, matching the scheduler's timer tie-break, so two
    installs of the same plan replay identically.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()):
        self.events: list[FaultEvent] = sorted(events, key=lambda e: e.time)

    # -- fluent builders ---------------------------------------------------

    def add(self, event: FaultEvent) -> "FaultPlan":
        """Insert ``event`` keeping time order (stable for equal times)."""
        position = len(self.events)
        for index, existing in enumerate(self.events):
            if existing.time > event.time:
                position = index
                break
        self.events.insert(position, event)
        return self

    def crash(self, time: float, process: Hashable) -> "FaultPlan":
        """Kill ``process`` at virtual ``time``."""
        return self.add(FaultEvent(time, CRASH, target=process))

    def partition(self, time: float, a: Hashable, b: Hashable,
                  heal_at: float | None = None) -> "FaultPlan":
        """Cut link ``a--b`` at ``time``; optionally heal at ``heal_at``."""
        self.add(FaultEvent(time, PARTITION, target=(a, b)))
        if heal_at is not None:
            if heal_at <= time:
                raise FaultPlanError(
                    f"heal time {heal_at} must be after partition time {time}")
            self.heal(heal_at, a, b)
        return self

    def heal(self, time: float, a: Hashable, b: Hashable) -> "FaultPlan":
        """Restore link ``a--b`` at ``time``."""
        return self.add(FaultEvent(time, HEAL, target=(a, b)))

    def slow(self, time: float, factor: float,
             until: float | None = None) -> "FaultPlan":
        """Multiply remote latencies by ``factor`` from ``time`` on.

        With ``until`` the factor reverts to 1.0 at that time (a spike).
        """
        if factor <= 0:
            raise FaultPlanError(f"latency factor must be > 0, got {factor}")
        self.add(FaultEvent(time, SLOW, value=float(factor)))
        if until is not None:
            if until <= time:
                raise FaultPlanError(
                    f"spike end {until} must be after start {time}")
            self.add(FaultEvent(until, SLOW, value=1.0))
        return self

    def drop(self, time: float, retries: int,
             until: float | None = None) -> "FaultPlan":
        """Make remote links lossy: each message retransmitted ``retries``
        times from ``time`` on; with ``until``, losses stop at that time."""
        if retries < 0:
            raise FaultPlanError(f"drop retries must be >= 0, got {retries}")
        self.add(FaultEvent(time, DROP, value=int(retries)))
        if until is not None:
            if until <= time:
                raise FaultPlanError(
                    f"drop window end {until} must be after start {time}")
            self.add(FaultEvent(until, DROP, value=0))
        return self

    # -- generation --------------------------------------------------------

    @classmethod
    def random(cls, seed: int, processes: Sequence[Hashable] = (),
               links: Sequence[tuple[Hashable, Hashable]] = (),
               horizon: float = 10.0, crashes: int = 1, partitions: int = 0,
               slow_windows: int = 0, drop_windows: int = 0,
               not_before: float = 0.0) -> "FaultPlan":
        """Generate a reproducible plan from ``seed``.

        ``crashes`` victims are drawn (without replacement) from
        ``processes``; ``partitions`` cut-and-heal windows from ``links``.
        All times land in ``[not_before, horizon)``.  The same arguments
        and seed always yield the identical plan.
        """
        if horizon <= not_before:
            raise FaultPlanError(
                f"horizon {horizon} must be after not_before {not_before}")
        rng = random.Random(seed)
        plan = cls()

        def moment() -> float:
            return round(rng.uniform(not_before, horizon), 3)

        victims = list(processes)
        rng.shuffle(victims)
        for victim in victims[:crashes]:
            plan.crash(moment(), victim)
        for _ in range(partitions):
            if not links:
                break
            a, b = links[rng.randrange(len(links))]
            start = moment()
            span = max((horizon - start) * rng.random(), 0.001)
            plan.partition(start, a, b, heal_at=round(start + span, 3))
        for _ in range(slow_windows):
            start = moment()
            span = max((horizon - start) * rng.random(), 0.001)
            plan.slow(start, round(rng.uniform(2.0, 8.0), 3),
                      until=round(start + span, 3))
        for _ in range(drop_windows):
            start = moment()
            span = max((horizon - start) * rng.random(), 0.001)
            plan.drop(start, rng.randint(1, 3), until=round(start + span, 3))
        return plan

    # -- installation ------------------------------------------------------

    def install(self, scheduler: "Scheduler",
                transport: "NetworkTransport | None" = None
                ) -> list["TimerHandle"]:
        """Arm one timer per event; return the handles (for cancellation).

        Network events require ``transport``; purely crash-based plans do
        not.  When a transport is supplied, its partition-aware filter is
        installed so cut links actually block rendezvous; if the scheduler
        already has a *different* match filter, the two are composed with
        AND (both must allow a pair), so neither silently shadows the
        other.  The transport's ``rendezvous_deadline``, when set, is
        copied onto ``scheduler.match_deadline`` so a pair blocked by the
        partition times out instead of waiting forever.
        """
        for event in self.events:
            if event.kind in _TRANSPORT_KINDS and transport is None:
                raise FaultPlanError(
                    f"event {event.describe()!r} needs a NetworkTransport")
            if event.time < scheduler.now:
                raise FaultPlanError(
                    f"event {event.describe()!r} is in the past "
                    f"(now={scheduler.now})")
        if transport is not None:
            existing = scheduler.match_filter
            # ``transport.match_filter`` is a bound method, recreated per
            # access — compare with ``==`` so re-installing the same
            # transport stays idempotent instead of stacking wrappers.
            if existing is None:
                scheduler.match_filter = transport.match_filter
            elif existing != transport.match_filter:
                def composed(sender, receiver, _first=existing,
                             _second=transport.match_filter) -> bool:
                    return (_first(sender, receiver)
                            and _second(sender, receiver))
                scheduler.match_filter = composed
            if transport.rendezvous_deadline is not None:
                scheduler.match_deadline = transport.rendezvous_deadline
        return [scheduler.schedule_at(
                    event.time, self._action(scheduler, transport, event))
                for event in self.events]

    def _action(self, scheduler: "Scheduler",
                transport: "NetworkTransport | None", event: FaultEvent):
        def fire() -> None:
            applied = True
            if event.kind == CRASH:
                process = scheduler.processes.get(event.target)
                applied = process is not None and not process.finished
                scheduler.tracer.emit(scheduler.now, EventKind.FAULT,
                                      event.target, fault=event.kind,
                                      applied=applied)
                if applied:
                    scheduler.kill(event.target)
                return
            a, b = event.target if event.kind in (PARTITION, HEAL) else (None, None)
            if event.kind == PARTITION:
                transport.partition(a, b)
            elif event.kind == HEAL:
                transport.heal(a, b)
            elif event.kind == SLOW:
                transport.latency_factor = event.value
            elif event.kind == DROP:
                transport.drop_retries = event.value
            scheduler.tracer.emit(scheduler.now, EventKind.FAULT, None,
                                  fault=event.kind, target=event.target,
                                  value=event.value, applied=applied)
        return fire

    # -- introspection / serialization -------------------------------------

    def describe(self) -> list[str]:
        """One line per event, in firing order."""
        return [event.describe() for event in self.events]

    def to_jsonable(self) -> dict[str, Any]:
        """Plain-JSON encoding: the replayable form of a found schedule.

        Round-trips through :meth:`from_jsonable`; the exploration CLI
        writes this shape into counterexample files and the resume
        registry carries it inside journal headers.
        """
        return {"events": [event.to_jsonable() for event in self.events]}

    @classmethod
    def from_jsonable(cls, data: Any) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_jsonable` output (or a bare
        event list)."""
        if isinstance(data, dict):
            data = data.get("events", [])
        if not isinstance(data, list):
            raise FaultPlanError(f"fault plan must be a mapping with "
                                 f"'events' or a list, got {data!r}")
        return cls(FaultEvent.from_jsonable(event) for event in data)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultPlan {len(self.events)} events>"


# -------------------------------------------------------------------------
# Journal corruption: faults against the durability layer itself
# -------------------------------------------------------------------------

TRUNCATE = "truncate"
BITFLIP = "bitflip"
GARBAGE = "garbage"

CORRUPTION_MODES = (TRUNCATE, BITFLIP, GARBAGE)


@dataclasses.dataclass(frozen=True, slots=True)
class JournalCorruptionPlan:
    """A seeded, post-hoc corruption of a durable journal file.

    Unlike :class:`FaultPlan`, which schedules misfortune *inside* the
    virtual world, this plan attacks the persistence layer from outside —
    the damage a crashing kernel, a cheap disk, or a half-finished write
    can inflict on the file itself:

    ``truncate``
        Drop the final ``intensity`` bytes: the classic torn last write.
    ``bitflip``
        Flip ``intensity`` random bits inside the file's tail region: a
        silent media error the CRC framing must catch.
    ``garbage``
        Append ``intensity`` random bytes: a torn write that got further
        than its length prefix.

    All randomness comes from ``seed``, so a corruption that exposes a
    bug is its own reproduction recipe.  The 8-byte magic preamble is
    never touched: these are crash-shaped faults, and no crash rewrites
    the start of an append-only file — readers treat the damage as a
    droppable torn tail, not a structural error.
    """

    seed: int
    mode: str = TRUNCATE
    intensity: int = 8

    #: Bitflips land within this many bytes of the end of the file.
    TAIL_REGION = 64

    def __post_init__(self) -> None:
        if self.mode not in CORRUPTION_MODES:
            raise FaultPlanError(f"unknown corruption mode {self.mode!r}; "
                                 f"choose from {CORRUPTION_MODES}")
        if self.intensity < 1:
            raise FaultPlanError(
                f"corruption intensity must be >= 1, got {self.intensity}")

    @classmethod
    def random(cls, seed: int) -> "JournalCorruptionPlan":
        """Draw a mode and intensity from ``seed`` (reproducibly)."""
        rng = random.Random(seed)
        return cls(seed=seed, mode=CORRUPTION_MODES[rng.randrange(
            len(CORRUPTION_MODES))], intensity=rng.randint(1, 16))

    def apply(self, path: str) -> str:
        """Corrupt the file at ``path`` in place; return a description.

        The journal magic (first 8 bytes) is preserved; truncation never
        shortens the file below it.
        """
        rng = random.Random(self.seed)
        with open(path, "r+b") as handle:
            data = bytearray(handle.read())
            preamble = 8
            if self.mode == TRUNCATE:
                new_size = max(len(data) - self.intensity, preamble)
                handle.truncate(new_size)
                return (f"truncated {len(data) - new_size} byte(s) "
                        f"from {path}")
            if self.mode == BITFLIP:
                low = max(preamble, len(data) - self.TAIL_REGION)
                if low >= len(data):
                    return f"nothing to flip in {path} (file is all magic)"
                for _ in range(self.intensity):
                    position = rng.randrange(low, len(data))
                    data[position] ^= 1 << rng.randrange(8)
                handle.seek(0)
                handle.write(data)
                return (f"flipped {self.intensity} bit(s) in the last "
                        f"{len(data) - low} byte(s) of {path}")
            handle.seek(0, 2)
            handle.write(bytes(rng.randrange(256)
                               for _ in range(self.intensity)))
            return f"appended {self.intensity} garbage byte(s) to {path}"

    def describe(self) -> str:
        """One-line human-readable rendering."""
        return (f"journal {self.mode} intensity={self.intensity} "
                f"(seed {self.seed})")

    def to_jsonable(self) -> dict[str, Any]:
        """Plain-JSON encoding; round-trips through :meth:`from_jsonable`."""
        return {"seed": self.seed, "mode": self.mode,
                "intensity": self.intensity}

    @classmethod
    def from_jsonable(cls, data: dict[str, Any]) -> "JournalCorruptionPlan":
        """Rebuild a corruption plan from :meth:`to_jsonable` output."""
        if not isinstance(data, dict):
            raise FaultPlanError(f"corruption plan must be a mapping, "
                                 f"got {data!r}")
        return cls(seed=data.get("seed", 0), mode=data.get("mode", TRUNCATE),
                   intensity=data.get("intensity", 8))
