"""Shared report formatting for the chaos/recovery/exploration CLIs.

Every soak-style report renders as a one-line header followed by aligned
``label  value`` rows.  The layout used to be duplicated between
:class:`~repro.faults.soak.SoakReport` and
:class:`~repro.recovery.soak.RecoverReport` (and would have been a third
time by the exploration report); this module is the single copy.
"""

from __future__ import annotations

from typing import Any, Iterable

#: Width the row labels are padded to; chosen so the historical reports'
#: output is byte-identical ("  outcomes      ..." etc.).
LABEL_WIDTH = 12


def kv_lines(header: str,
             rows: Iterable[tuple[str, Any]]) -> list[str]:
    """Render ``header`` plus one aligned detail line per ``(label, value)``."""
    lines = [header]
    for label, value in rows:
        lines.append(f"  {label:<{LABEL_WIDTH}}  {value}")
    return lines
