"""Chaos-report formatting — now a re-export of :mod:`repro.reporting`.

The aligned ``label  value`` layout this module introduced is shared by
every report-style CLI command (soak, recover, explore, replay, analyze,
verify), so the single copy moved to the package top level.  Importing
``kv_lines`` / ``LABEL_WIDTH`` from here keeps working.
"""

from __future__ import annotations

from ..reporting import LABEL_WIDTH, kv_lines

__all__ = ["LABEL_WIDTH", "kv_lines"]
