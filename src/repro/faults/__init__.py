"""Deterministic fault injection, chaos soaking, and fault-space search.

:mod:`repro.faults.plan` defines :class:`FaultPlan` — a seed-reproducible
schedule of process crashes, link partitions/heals, latency spikes and
message drops, installed onto a scheduler as plain timers.
:mod:`repro.faults.soak` runs the broadcast, lock-manager and chatroom
scripts for many performances under such plans and asserts that every run
finishes residue-free (empty board, no waiters, no timers, no aliases).
:mod:`repro.faults.explore` explores the fault space *systematically*: it
enumerates injection points from a fault-free run's instrumentation
stream, generates schedules anchored at them under a budget, judges each
run with a pluggable oracle set, and delta-debugs any failure down to a
minimal, replayable counterexample.
"""

from .explore import (DEFAULT_ORACLES, SCENARIOS, Counterexample,
                      ExploreReport, FaultSchedule, InjectionPoint,
                      InjectionProbe, check_saved_schedule, explore,
                      record_exploration)
from .plan import (BITFLIP, CORRUPTION_MODES, CRASH, DROP, GARBAGE, HEAL,
                   KINDS, PARTITION, SLOW, TRUNCATE, FaultEvent, FaultPlan,
                   JournalCorruptionPlan)
from .reporting import kv_lines
from .soak import (SCRIPTS, ChaosRun, SoakReport, broadcast_plan,
                   chatroom_plan, check_residue, lock_plan, make_chatroom,
                   make_chaos_broadcast, plan_for_seed, run_chaos_broadcast,
                   run_chaos_chatroom, run_chaos_lock, soak,
                   verify_determinism)

__all__ = [
    "BITFLIP",
    "CORRUPTION_MODES",
    "CRASH",
    "ChaosRun",
    "Counterexample",
    "DEFAULT_ORACLES",
    "DROP",
    "ExploreReport",
    "FaultEvent",
    "FaultPlan",
    "FaultSchedule",
    "GARBAGE",
    "HEAL",
    "InjectionPoint",
    "InjectionProbe",
    "JournalCorruptionPlan",
    "KINDS",
    "PARTITION",
    "SCENARIOS",
    "SCRIPTS",
    "SLOW",
    "TRUNCATE",
    "SoakReport",
    "broadcast_plan",
    "chatroom_plan",
    "check_residue",
    "check_saved_schedule",
    "explore",
    "kv_lines",
    "lock_plan",
    "make_chaos_broadcast",
    "make_chatroom",
    "plan_for_seed",
    "record_exploration",
    "run_chaos_broadcast",
    "run_chaos_chatroom",
    "run_chaos_lock",
    "soak",
    "verify_determinism",
]
