"""Deterministic fault injection and chaos soaking.

:mod:`repro.faults.plan` defines :class:`FaultPlan` — a seed-reproducible
schedule of process crashes, link partitions/heals, latency spikes and
message drops, installed onto a scheduler as plain timers.
:mod:`repro.faults.soak` runs the broadcast and lock-manager scripts for
many performances under such plans and asserts that every run finishes
residue-free (empty board, no waiters, no timers, no aliases).
"""

from .plan import (CRASH, DROP, HEAL, KINDS, PARTITION, SLOW, FaultEvent,
                   FaultPlan)
from .soak import (SCRIPTS, ChaosRun, SoakReport, check_residue,
                   make_chaos_broadcast, run_chaos_broadcast, run_chaos_lock,
                   soak, verify_determinism)

__all__ = [
    "CRASH",
    "ChaosRun",
    "DROP",
    "FaultEvent",
    "FaultPlan",
    "HEAL",
    "KINDS",
    "PARTITION",
    "SCRIPTS",
    "SLOW",
    "SoakReport",
    "check_residue",
    "make_chaos_broadcast",
    "run_chaos_broadcast",
    "run_chaos_lock",
    "soak",
    "verify_determinism",
]
