"""Deterministic fault injection and chaos soaking.

:mod:`repro.faults.plan` defines :class:`FaultPlan` — a seed-reproducible
schedule of process crashes, link partitions/heals, latency spikes and
message drops, installed onto a scheduler as plain timers.
:mod:`repro.faults.soak` runs the broadcast and lock-manager scripts for
many performances under such plans and asserts that every run finishes
residue-free (empty board, no waiters, no timers, no aliases).
"""

from .plan import (BITFLIP, CORRUPTION_MODES, CRASH, DROP, GARBAGE, HEAL,
                   KINDS, PARTITION, SLOW, TRUNCATE, FaultEvent, FaultPlan,
                   JournalCorruptionPlan)
from .soak import (SCRIPTS, ChaosRun, SoakReport, check_residue,
                   make_chaos_broadcast, run_chaos_broadcast, run_chaos_lock,
                   soak, verify_determinism)

__all__ = [
    "BITFLIP",
    "CORRUPTION_MODES",
    "CRASH",
    "ChaosRun",
    "DROP",
    "FaultEvent",
    "FaultPlan",
    "GARBAGE",
    "HEAL",
    "JournalCorruptionPlan",
    "KINDS",
    "PARTITION",
    "SCRIPTS",
    "SLOW",
    "TRUNCATE",
    "SoakReport",
    "check_residue",
    "make_chaos_broadcast",
    "run_chaos_broadcast",
    "run_chaos_lock",
    "soak",
    "verify_determinism",
]
