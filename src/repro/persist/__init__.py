"""Durable performance journal: crash-consistent record + deterministic resume.

The runtime kernel resolves every piece of nondeterminism through a
seeded RNG and a virtual-time timer wheel, which makes any run a pure
function of ``(scenario, seed, options)``.  This package turns that
property into durability:

* :mod:`~repro.persist.journal` — the on-disk format: an append-only,
  CRC32-framed, length-prefixed write-ahead log whose only possible
  crash damage is a detectable (and droppable) torn tail;
* :mod:`~repro.persist.record` — :class:`JournalRecorder`, an
  instrumentation sink that writes every nondeterminism-resolving
  scheduler action (trace events, RNG choices, timer fires) plus
  periodic state-digest snapshots into a journal;
* :mod:`~repro.persist.resume` — :func:`resume`: re-run the header's
  recipe with a :class:`ReplayValidator` attached, verifying the fresh
  run frame-by-frame against the journal and then *continuing past the
  crash point*;
* :mod:`~repro.persist.chaos` — :func:`kill9_resume`, a subprocess
  harness that SIGKILLs a journaled run mid-performance for real and
  proves the resumed run commits the identical rendezvous sequence.

See DESIGN.md §12 for the format and the replay-validation argument.
"""

from .chaos import (COMPLETED_BEFORE_KILL, Kill9Report, kill9_resume,
                    record_run, run_kill9_child, tear_tail)
from .journal import (DECISION, END, EVENT, HEADER, MAGIC, SNAPSHOT,
                      JournalDocument, JournalWriter, encode_frame,
                      read_journal)
from .record import (FORMAT_VERSION, SNAPSHOT_EVERY, FrameSink,
                     JournalRecorder, header_record)
from .resume import (ReplayValidator, ResumeReport, commit_summary, resume,
                     scenario_registry)

__all__ = [
    "COMPLETED_BEFORE_KILL",
    "DECISION",
    "END",
    "EVENT",
    "FORMAT_VERSION",
    "FrameSink",
    "HEADER",
    "JournalDocument",
    "JournalRecorder",
    "JournalWriter",
    "Kill9Report",
    "MAGIC",
    "ReplayValidator",
    "ResumeReport",
    "SNAPSHOT",
    "SNAPSHOT_EVERY",
    "commit_summary",
    "encode_frame",
    "header_record",
    "kill9_resume",
    "read_journal",
    "record_run",
    "resume",
    "run_kill9_child",
    "scenario_registry",
    "tear_tail",
]
