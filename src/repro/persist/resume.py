"""Deterministic resume: replay a journal through a fresh scheduler.

The kernel is a pure function of ``(scenario, seed, options)`` — every
draw of nondeterminism goes through the seeded RNG or the virtual-time
timer wheel, and the journal records each one.  Resume therefore does not
patch scheduler state back in from snapshots; it *re-runs* the recorded
scenario from its header recipe with a :class:`ReplayValidator` attached,
which checks every freshly produced frame against the journal, frame by
frame.  Three things can happen per frame:

* it matches the recorded frame — the replay is still on the recorded
  trajectory (this covers events, RNG/timer decisions, and the periodic
  state-digest snapshots, so divergence is caught within one snapshot
  interval at worst, usually at the exact decision);
* it differs — :class:`~repro.errors.ResumeMismatch` pinpoints the first
  divergent frame with both sides attached;
* the journal is exhausted — the run has passed the crash point and the
  remaining frames are *fresh*: the continuation the crashed run never
  got to write.

A torn tail (see :mod:`repro.persist.journal`) just shortens the
validated prefix; the replay still runs the scenario to completion, which
is exactly the crash-recovery story: kill -9 mid-run, resume, finish with
the same committed-rendezvous sequence.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Any, Callable

from ..errors import PersistError, ResumeMismatch
from . import journal as journal_format
from .journal import JournalDocument, read_journal
from .record import FORMAT_VERSION, FrameSink


def scenario_registry() -> dict[str, Callable[..., Any]]:
    """The scenarios a journal header may name, resolved lazily.

    Imported on demand so :mod:`repro.persist` stays importable from the
    fault/recovery layers without a cycle.
    """
    from ..faults.soak import (run_chaos_broadcast, run_chaos_chatroom,
                               run_chaos_lock)
    from ..recovery.soak import run_recover_broadcast
    return {"broadcast": run_chaos_broadcast, "lock": run_chaos_lock,
            "chatroom": run_chaos_chatroom,
            "recover": run_recover_broadcast}


def commit_summary(frames: list[dict[str, Any]]) -> list[tuple[int, str]]:
    """``(trace seq, process)`` for every committed rendezvous, in order.

    This is the sequence the acceptance property quantifies over: a
    resumed run must produce the same committed-rendezvous sequence,
    trace-id-verified, as an uninterrupted run of the same seed.
    """
    return [(frame["seq"], frame["p"]) for frame in frames
            if frame.get("k") == journal_format.EVENT
            and frame.get("kind") == "comm"]


class ReplayValidator(FrameSink):
    """Frame sink that checks a fresh run against recorded frames.

    Attach to the replaying scheduler exactly where the recorder was
    attached.  ``position`` counts validated frames; once the journal is
    exhausted, further frames are counted as ``fresh`` (the continuation)
    and collected in ``frames`` alongside the validated ones, so the
    caller sees the full frame stream of the resumed run.
    """

    def __init__(self, expected: list[dict[str, Any]], *,
                 snapshot_every: int):
        super().__init__(snapshot_every=snapshot_every)
        self.expected = expected
        self.position = 0
        self.fresh = 0
        self.frames: list[dict[str, Any]] = []
        self.finished = False

    def _note_frame(self, record: dict[str, Any]) -> None:
        self.frames.append(record)
        if self.position < len(self.expected):
            want = self.expected[self.position]
            if record != want:
                raise ResumeMismatch(
                    "replayed run diverged from the journal",
                    frame_index=self.position, expected=want,
                    observed=record)
            self.position += 1
        else:
            self.fresh += 1

    def finish(self, status: str) -> None:
        self._note_frame(self._end_record(status))
        self.finished = True

    def barrier(self) -> None:
        """Durability is the recorder's concern; validation needs none."""


@dataclasses.dataclass(slots=True)
class ResumeReport:
    """What a resume established, and what the resumed run produced."""

    path: str
    scenario: str
    seed: int
    options: dict[str, Any]
    torn: bool                   # journal ended in a torn (dropped) frame
    complete: bool               # journal held an intact ``end`` frame
    journal_frames: int          # intact recorded frames (header excluded)
    replayed: int                # frames validated against the journal
    fresh: int                   # frames produced past the journal's end
    outcome: str                 # resumed run's outcome
    committed: list[tuple[int, str]]  # full committed-rendezvous sequence
    run: Any                     # the scenario's own run/report object

    def lines(self) -> list[str]:
        """Human-readable summary for the CLI."""
        tail = "torn tail dropped" if self.torn else (
            "complete" if self.complete else "no end frame (crashed run)")
        return [
            f"resume: {self.scenario} seed {self.seed} from {self.path}",
            f"  journal       {self.journal_frames} frame(s), {tail}",
            f"  validated     {self.replayed} frame(s) replayed identically",
            f"  continuation  {self.fresh} fresh frame(s) past the journal",
            f"  rendezvous    {len(self.committed)} committed",
            f"  outcome       {self.outcome}",
        ]


def _check_header(doc: JournalDocument, *, expect_seed: int | None,
                  expect_scenario: str | None) -> tuple[int, str,
                                                        dict[str, Any], int]:
    header = doc.header
    if header.get("version") != FORMAT_VERSION:
        raise ResumeMismatch(
            f"journal format version {header.get('version')!r} does not "
            f"match this library's version {FORMAT_VERSION}")
    seed = header.get("seed")
    scenario = header.get("scenario")
    if not isinstance(seed, int) or not isinstance(scenario, str):
        raise ResumeMismatch("journal header lacks a seed/scenario recipe")
    if expect_seed is not None and expect_seed != seed:
        raise ResumeMismatch(f"journal was recorded at seed {seed}, "
                             f"resume requested seed {expect_seed}")
    if expect_scenario is not None and expect_scenario != scenario:
        raise ResumeMismatch(
            f"journal records scenario {scenario!r}, resume requested "
            f"{expect_scenario!r}")
    options = header.get("options") or {}
    if not isinstance(options, dict):
        raise ResumeMismatch("journal header options are not a mapping")
    snapshot_every = header.get("snapshot_every")
    if not isinstance(snapshot_every, int) or snapshot_every < 1:
        raise ResumeMismatch("journal header lacks the snapshot cadence")
    return seed, scenario, options, snapshot_every


def resume(path: str | os.PathLike, *, expect_seed: int | None = None,
           expect_scenario: str | None = None,
           registry: dict[str, Callable[..., Any]] | None = None) -> ResumeReport:
    """Resume the run recorded at ``path``; validate, then continue.

    Raises :class:`~repro.errors.JournalError` for a structurally broken
    file and :class:`~repro.errors.ResumeMismatch` when the header recipe
    conflicts with expectations or the replay diverges from any recorded
    frame.  A torn tail is tolerated (the crash case); an intact journal
    of a *completed* run simply validates end to end with zero fresh
    frames.
    """
    doc = read_journal(path)
    seed, scenario, options, snapshot_every = _check_header(
        doc, expect_seed=expect_seed, expect_scenario=expect_scenario)
    runners = registry if registry is not None else scenario_registry()
    runner = runners.get(scenario)
    if runner is None:
        raise ResumeMismatch(f"journal names unknown scenario {scenario!r} "
                             f"(known: {', '.join(sorted(runners))})")
    validator = ReplayValidator(doc.frames, snapshot_every=snapshot_every)
    run = runner(seed, journal=validator, **options)
    if not validator.finished:
        raise PersistError(
            f"scenario {scenario!r} never called journal.finish(); its "
            f"runner does not support journaling")
    if validator.position < len(validator.expected):
        raise ResumeMismatch(
            f"replayed run ended after {validator.position} frame(s) but "
            f"the journal holds {len(validator.expected)}",
            frame_index=validator.position,
            expected=validator.expected[validator.position])
    return ResumeReport(
        path=os.fspath(path), scenario=scenario, seed=seed, options=options,
        torn=doc.torn, complete=doc.complete,
        journal_frames=len(doc.frames), replayed=validator.position,
        fresh=validator.fresh,
        outcome=str(getattr(run, "outcome", "completed")),
        committed=commit_summary(validator.frames), run=run)
