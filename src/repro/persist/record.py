"""Journal frame production: turning kernel callbacks into frames.

:class:`FrameSink` is the shared half of recording *and* replay: it is an
instrumentation sink (plus tracer listener) that renders every
nondeterminism-relevant scheduler action into a canonical JSON-able frame
dict — trace events, RNG/timer decisions, and a periodic state-digest
snapshot every ``snapshot_every`` commits.  What happens to each frame is
the subclass's business: :class:`JournalRecorder` appends it to a
:class:`~repro.persist.journal.JournalWriter`; the replay validator in
:mod:`repro.persist.resume` compares it against the recorded journal.

Because both sides derive frames from the *same* callbacks in the same
single-threaded order, frame-by-frame equality of two runs is exactly
equality of their resolved nondeterminism — which is the property resume
verifies.

Hot-path cost: the recorder runs *write-behind*.  In the default (lazy)
mode the scheduler's callbacks only note a reference to the immutable
:class:`~repro.runtime.tracing.TraceEvent` (or a small decision tuple);
rendering to JSON and writing happen in batches at durability points —
:meth:`JournalRecorder.barrier`, an explicit sync, buffer pressure, or
:meth:`finish`.  That is the classic group-commit write-ahead-log trade:
frames are guaranteed on disk exactly at barriers, and the per-event cost
inside the scheduler loop is one list append.  Passing ``fsync_every``
(or arming ``kill_after_frames``) switches to eager mode, where every
frame is rendered, written and counted immediately — what the kill -9
harness uses to place a crash point with single-frame precision.
Deferred rendering relies on the tracer's contract that events are
immutable once emitted; state-digest snapshots are always rendered
eagerly since they sample live scheduler state.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Any, Hashable

from ..errors import PersistError
from ..obs.export import jsonable
from ..runtime.instrument import Sink, TeeSink
from ..runtime.scheduler import Scheduler
from ..runtime.tracing import TraceEvent
from . import journal as journal_format
from .journal import JournalWriter

#: Default snapshot cadence: one state-digest frame every N commits.
SNAPSHOT_EVERY = 64

#: Journal format version stamped into every header frame.
FORMAT_VERSION = 1

#: Lazy recorders spill to the writer when this many frames are pending.
#: Generous on purpose: the tracer retains every TraceEvent for the whole
#: run anyway, so the pending buffer holds references (plus small decision
#: tuples), and a spill inside the run loop pays the full render+encode
#: cost on the scheduler's critical path — exactly what lazy mode exists
#: to avoid.
SPILL_LIMIT = 65536


def header_record(seed: int, scenario: str,
                  options: dict[str, Any] | None = None,
                  snapshot_every: int = SNAPSHOT_EVERY) -> dict[str, Any]:
    """Build the header frame for a run of ``scenario`` at ``seed``.

    ``options`` must be JSON-able: together with the seed they are the
    complete recipe for re-running the scenario, so resume can rebuild the
    run from the header alone.  The snapshot cadence rides along because a
    replay must snapshot at the same commits to stay frame-aligned.
    """
    return {"k": journal_format.HEADER, "version": FORMAT_VERSION,
            "seed": seed, "scenario": scenario,
            "options": jsonable(options or {}),
            "snapshot_every": snapshot_every}


def event_record(event: TraceEvent) -> dict[str, Any]:
    """Canonical frame for one trace event."""
    return {"k": journal_format.EVENT, "kind": event.kind.value,
            "seq": event.seq, "t": event.time, "p": repr(event.process),
            "d": jsonable(event.details)}


def decision_record(time: float, kind: str, subject: Hashable,
                    payload: Any) -> dict[str, Any]:
    """Canonical frame for one RNG/timer decision."""
    return {"k": journal_format.DECISION, "kind": kind, "t": time,
            "subject": repr(subject), "payload": jsonable(payload)}


def snapshot_record(commits: int, capture: tuple) -> dict[str, Any]:
    """Canonical snapshot frame from a :meth:`Scheduler.state_capture`."""
    return {"k": journal_format.SNAPSHOT, "commits": commits,
            "digest": jsonable(Scheduler.digest_of(capture))}


@dataclasses.dataclass(slots=True)
class _PendingSnapshot:
    """A snapshot noted on the hot path, awaiting digest rendering."""

    commits: int
    capture: tuple


class FrameSink(Sink):
    """Base sink that renders scheduler activity into journal frames.

    Subclasses implement :meth:`_note_event`, :meth:`_note_decision` and
    :meth:`_note_frame`; the attachment protocol, frame shapes, and
    snapshot cadence are shared, which is what guarantees a recording run
    and a replaying run describe themselves identically.
    """

    def __init__(self, *, snapshot_every: int = SNAPSHOT_EVERY):
        if snapshot_every < 1:
            raise PersistError("snapshot_every must be >= 1")
        self.snapshot_every = snapshot_every
        self.scheduler: Scheduler | None = None

    # -- wiring ------------------------------------------------------------

    def attach(self, scheduler: Scheduler) -> "FrameSink":
        """Install on ``scheduler``, composing with any existing sink.

        Must be called at the same point of the run on both the recording
        and the replaying side (the scenario runners do this right after
        constructing the scheduler and transport), or the two frame
        streams would start at different offsets.
        """
        if self.scheduler is not None:
            raise PersistError("this frame sink is already attached")
        self.scheduler = scheduler
        # A tee over the null sink would re-dispatch every callback
        # through a one-element loop; install directly when alone.
        scheduler.sink = self if not scheduler.sink \
            else TeeSink(scheduler.sink, self)
        scheduler.tracer.add_listener(self.event_listener())
        # Snapshot cadence rides the kernel's commit-cadence slot rather
        # than Sink.on_commit: two integer ops per commit instead of a
        # dispatched Python call, on both the recording and replay side.
        scheduler.set_commit_cadence(self.snapshot_every,
                                     self._note_snapshot)
        return self

    def event_listener(self) -> Any:
        """The callable registered with the tracer for trace events.

        Overridable so a hot-path subclass can hand the tracer something
        cheaper than a bound Python method.
        """
        return self.on_event

    # -- kernel callbacks --------------------------------------------------

    def on_event(self, event: TraceEvent) -> None:
        self._note_event(event)

    def on_decision(self, time: float, kind: str, subject: Hashable,
                    payload: Any) -> None:
        self._note_decision(time, kind, subject, payload)

    def _note_snapshot(self) -> None:
        # Snapshots sample live scheduler state: render now by default.
        # The lazy recorder overrides this with a cheap state capture.
        self._note_frame(self._snapshot_record())

    def _snapshot_record(self) -> dict[str, Any]:
        assert self.scheduler is not None
        return snapshot_record(self.scheduler.commit_count,
                               self.scheduler.state_capture())

    def _end_record(self, status: str) -> dict[str, Any]:
        record: dict[str, Any] = {"k": journal_format.END, "status": status,
                                  "commits": 0}
        if self.scheduler is not None:
            record["commits"] = self.scheduler.commit_count
            record["digest"] = jsonable(self.scheduler.state_digest())
        return record

    # -- subclass responsibilities ----------------------------------------

    def _note_event(self, event: TraceEvent) -> None:
        self._note_frame(event_record(event))

    def _note_decision(self, time: float, kind: str, subject: Hashable,
                       payload: Any) -> None:
        self._note_frame(decision_record(time, kind, subject, payload))

    def _note_frame(self, record: dict[str, Any]) -> None:
        raise NotImplementedError

    def finish(self, status: str) -> None:
        """The run ended; emit/verify the terminal frame and release."""
        raise NotImplementedError

    def barrier(self) -> None:
        """Make everything emitted so far durable (no-op off-disk)."""


class JournalRecorder(FrameSink):
    """Record a run's frames into a durable journal file.

    Construction opens the file and writes the header, so the journal
    identifies its run even if the process dies before the first frame.
    ``kill_after_frames`` arms the crash harness: after that many frames
    (header included) have been appended *and synced*, ``kill_hook`` is
    invoked — the default SIGKILLs the current process, simulating a
    crash whose journal is guaranteed durable up to the kill point.
    Setting either ``fsync_every`` or ``kill_after_frames`` selects eager
    mode (render + write per frame); otherwise frames buffer in memory
    and spill at barriers, buffer pressure, or the end of the run.
    """

    def __init__(self, path: str | os.PathLike, *, seed: int, scenario: str,
                 options: dict[str, Any] | None = None,
                 snapshot_every: int = SNAPSHOT_EVERY,
                 fsync_every: int | None = None,
                 registry: Any = None,
                 kill_after_frames: int | None = None,
                 kill_hook: Any = None):
        super().__init__(snapshot_every=snapshot_every)
        self.writer = JournalWriter(path, fsync_every=fsync_every,
                                    registry=registry)
        self.kill_after_frames = kill_after_frames
        self.kill_hook = kill_hook if kill_hook is not None else _sigkill_self
        self._eager = (fsync_every is not None
                       or kill_after_frames is not None)
        #: Noted-but-unrendered entries: TraceEvents, decision tuples, and
        #: pre-rendered dicts (snapshots), in emission order.
        self._pending: list[Any] = []
        self.writer.append(header_record(seed, scenario, options,
                                         snapshot_every=snapshot_every))
        self._maybe_kill()

    @property
    def path(self) -> str:
        return self.writer.path

    @property
    def frames_noted(self) -> int:
        """Frames noted so far (header included, pending included)."""
        return self.writer.frames_written + len(self._pending)

    # -- hot path ----------------------------------------------------------
    # The public callbacks are overridden (not just the _note_* hooks) to
    # flatten one dispatch layer: these run once per trace event, RNG
    # decision and commit, and at N=200 the dispatch overhead alone is
    # measurable against the kernel's ~25us/commit budget.

    def on_event(self, event: TraceEvent) -> None:
        if self._eager:
            self._write(event_record(event))
        else:
            self._pending.append(event)

    _note_event = on_event

    def event_listener(self) -> Any:
        # Lazy mode hands the tracer the pending list's own C-level
        # append: per-event recording cost becomes one list insertion.
        # _spill keeps the list object alive, so the callable stays valid.
        if self._eager:
            return self.on_event
        return self._pending.append

    def on_decision(self, time: float, kind: str, subject: Hashable,
                    payload: Any) -> None:
        if self._eager:
            self._write(decision_record(time, kind, subject, payload))
        else:
            self._pending.append((time, kind, subject, payload))
            if len(self._pending) >= SPILL_LIMIT:
                self._spill()

    def _note_decision(self, time: float, kind: str, subject: Hashable,
                       payload: Any) -> None:
        self.on_decision(time, kind, subject, payload)

    def _note_frame(self, record: dict[str, Any]) -> None:
        if self._eager:
            self._write(record)
        else:
            self._pending.append(record)
            if len(self._pending) >= SPILL_LIMIT:
                self._spill()

    def _note_snapshot(self) -> None:
        if self._eager:
            self._write(self._snapshot_record())
            return
        assert self.scheduler is not None
        self._pending.append(_PendingSnapshot(
            self.scheduler.commit_count, self.scheduler.state_capture()))
        # Trace events bypass the per-append limit check (they go through
        # the raw list append); bound the buffer at snapshot cadence
        # instead.  The bound stays approximate by at most one snapshot
        # interval's worth of events, which is fine for a memory guard.
        if len(self._pending) >= SPILL_LIMIT:
            self._spill()

    # -- spill / durability ------------------------------------------------

    def _write(self, record: dict[str, Any]) -> None:
        self.writer.append(record)
        self._maybe_kill()

    def _spill(self) -> None:
        """Render and write every pending entry, in order.

        Drains in place — the list object must survive because the
        tracer holds its bound ``append`` as the event listener.
        """
        pending = self._pending[:]
        self._pending.clear()
        for entry in pending:
            if isinstance(entry, TraceEvent):
                self._write(event_record(entry))
            elif isinstance(entry, _PendingSnapshot):
                self._write(snapshot_record(entry.commits, entry.capture))
            elif isinstance(entry, dict):
                self._write(entry)
            else:
                self._write(decision_record(*entry))

    def _maybe_kill(self) -> None:
        if (self.kill_after_frames is not None
                and self.writer.frames_written >= self.kill_after_frames):
            self.writer.sync()
            self.kill_hook()

    def finish(self, status: str) -> None:
        """Append the end frame (status + final digest) and close."""
        self._spill()
        self._write(self._end_record(status))
        self.writer.close()
        self._release_cadence()

    def barrier(self) -> None:
        """Flush and fsync: every frame noted so far survives a crash."""
        self._spill()
        self.writer.sync()

    def _release_cadence(self) -> None:
        # A commit after close would otherwise snapshot into a closed
        # writer; no scheduler should commit past finish, but the hook
        # must not be the thing that turns that bug into corruption.
        if self.scheduler is not None:
            self.scheduler.set_commit_cadence(1, None)

    def close(self) -> None:
        """Spill and close without an end frame (reads as a crashed run)."""
        self._spill()
        self.writer.close()
        self._release_cadence()


def _sigkill_self() -> None:  # pragma: no cover - exercised via subprocess
    """Die like a crash: no atexit, no flushing beyond what already ran."""
    import signal
    os.kill(os.getpid(), signal.SIGKILL)


@dataclasses.dataclass(slots=True)
class RecordReport:
    """Summary of a completed recording run (for CLI/report plumbing)."""

    path: str
    seed: int
    scenario: str
    frames: int
    bytes: int
    fsyncs: int
    outcome: str
