"""Kill -9 crash/resume harness: prove durability against real SIGKILL.

In-process fault injection can simulate a crashed *process inside the
virtual world*; it cannot simulate the journal's own writer dying.  This
harness does it for real:

1. run the scenario once in-process, journaled, as the **oracle** — its
   journal holds the complete frame stream and committed-rendezvous
   sequence of an uninterrupted run;
2. spawn a **child** Python process (``python -m repro _kill9-child``)
   that runs the same scenario with a recorder armed to SIGKILL itself
   after N synced frames — a genuine, unhandled ``kill -9`` mid-run,
   leaving a journal that is durable exactly up to the kill point;
3. optionally tear the journal further (truncate/bit-flip its tail, the
   crash modes a filesystem can inflict);
4. :func:`~repro.persist.resume.resume` the child's journal and check the
   resumed run's committed-rendezvous sequence is identical, trace id by
   trace id, to the oracle's.

Everything is seed-deterministic, so the kill point defaults to halfway
through the oracle's frame count — guaranteed to interrupt, never to
under- or overshoot.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import subprocess
import sys
from typing import Any

from ..errors import PersistError
from .journal import read_journal
from .record import SNAPSHOT_EVERY, JournalRecorder
from .resume import ResumeReport, commit_summary, resume, scenario_registry

#: Child exit code meaning "the run finished before the kill point fired".
COMPLETED_BEFORE_KILL = 3


def record_run(scenario: str, seed: int, path: str | os.PathLike, *,
               options: dict[str, Any] | None = None,
               snapshot_every: int = SNAPSHOT_EVERY,
               fsync_every: int | None = None,
               registry: Any = None,
               kill_after_frames: int | None = None) -> Any:
    """Run ``scenario`` at ``seed`` with a journal recorder attached.

    Returns the scenario's own run object.  With ``kill_after_frames``
    set, this call does not return: the recorder SIGKILLs the process at
    the kill point (the ``_kill9-child`` CLI verb is a thin shell over
    exactly this).
    """
    runners = scenario_registry()
    runner = runners.get(scenario)
    if runner is None:
        raise PersistError(f"unknown scenario {scenario!r} "
                           f"(known: {', '.join(sorted(runners))})")
    recorder = JournalRecorder(
        path, seed=seed, scenario=scenario, options=options,
        snapshot_every=snapshot_every, fsync_every=fsync_every,
        registry=registry, kill_after_frames=kill_after_frames)
    try:
        return runner(seed, journal=recorder, **(options or {}))
    except BaseException:
        # Leave what was recorded on disk (no end frame: reads as a
        # crashed run), but never leak the file handle.
        recorder.close()
        raise


def run_kill9_child(scenario: str, seed: int, path: str, kill_after: int,
                    options: dict[str, Any] | None = None) -> int:
    """Child side of the harness; normally dies by SIGKILL before returning.

    Returns :data:`COMPLETED_BEFORE_KILL` when the scenario finished
    before ``kill_after`` frames were written — a harness configuration
    error the parent turns into a failure.
    """
    record_run(scenario, seed, path, options=options, fsync_every=1,
               kill_after_frames=kill_after)
    return COMPLETED_BEFORE_KILL


def _child_environment() -> dict[str, str]:
    """Child env whose ``PYTHONPATH`` resolves this exact ``repro`` tree."""
    # this file -> persist/ -> repro/ -> the importable source root
    src = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing \
        else src + os.pathsep + existing
    return env


def tear_tail(path: str | os.PathLike, drop_bytes: int = 7) -> int:
    """Truncate the journal mid-frame: the classic torn final write.

    Removes ``drop_bytes`` from the end of the file (clamped so the
    header always survives); returns the new size.
    """
    path = os.fspath(path)
    size = os.path.getsize(path)
    new_size = max(size - max(1, drop_bytes), 8)
    with open(path, "r+b") as handle:
        handle.truncate(new_size)
    return new_size


@dataclasses.dataclass(slots=True)
class Kill9Report:
    """Everything the harness established for one scenario × seed."""

    scenario: str
    seed: int
    kill_after: int              # frames the child wrote before SIGKILL
    oracle_frames: int           # frames in the uninterrupted oracle run
    child_signal: int            # signal that killed the child (SIGKILL)
    torn: bool                   # child journal had a torn tail on read
    resume_report: ResumeReport
    oracle_committed: list[tuple[int, str]]
    committed_match: bool        # resumed sequence == oracle sequence

    @property
    def ok(self) -> bool:
        """True when the resumed run reproduced the oracle exactly."""
        return (self.committed_match
                and self.child_signal == signal.SIGKILL
                and self.resume_report.replayed > 0)

    def lines(self) -> list[str]:
        """Human-readable summary for the CLI."""
        report = self.resume_report
        return [
            f"kill9: {self.scenario} seed {self.seed}",
            f"  child         SIGKILL after {self.kill_after} synced "
            f"frame(s) (oracle run: {self.oracle_frames})",
            f"  journal       {report.journal_frames} intact frame(s)"
            + (", torn tail dropped" if self.torn else ""),
            f"  resume        {report.replayed} validated + "
            f"{report.fresh} fresh frame(s); outcome {report.outcome}",
            f"  rendezvous    {len(report.committed)}/"
            f"{len(self.oracle_committed)} committed, "
            f"{'identical to oracle' if self.committed_match else 'DIVERGED'}",
        ]


def kill9_resume(scenario: str, seed: int, work_dir: str | os.PathLike, *,
                 options: dict[str, Any] | None = None,
                 kill_after: int | None = None,
                 torn: bool = False,
                 timeout: float = 120.0) -> Kill9Report:
    """Full crash/resume cycle in ``work_dir``; see the module docstring.

    Raises :class:`PersistError` when the child does not die by SIGKILL
    (e.g. the run was too short for the kill point) — that is a harness
    bug, distinct from a durability failure, which shows up as
    ``committed_match=False`` in the report instead.
    """
    work_dir = os.fspath(work_dir)
    oracle_path = os.path.join(work_dir, f"oracle-{scenario}-{seed}.jrnl")
    child_path = os.path.join(work_dir, f"crash-{scenario}-{seed}.jrnl")

    record_run(scenario, seed, oracle_path, options=options)
    oracle_doc = read_journal(oracle_path)
    oracle_frames = len(oracle_doc.frames) + 1  # header included
    if kill_after is None:
        kill_after = max(2, oracle_frames // 2)
    if kill_after >= oracle_frames:
        raise PersistError(
            f"kill point {kill_after} is past the run's {oracle_frames} "
            f"frame(s); the child would complete instead of crashing")

    command = [sys.executable, "-m", "repro", "_kill9-child", scenario,
               "--seed", str(seed), "--journal", child_path,
               "--kill-after", str(kill_after)]
    if options:
        command += ["--options", json.dumps(options, sort_keys=True)]
    child = subprocess.run(command, env=_child_environment(),
                           capture_output=True, text=True, timeout=timeout)
    if child.returncode != -signal.SIGKILL:
        raise PersistError(
            f"kill9 child exited with {child.returncode} instead of dying "
            f"by SIGKILL; stderr: {child.stderr.strip()!r}")

    if torn:
        tear_tail(child_path)
    child_doc = read_journal(child_path)
    report = resume(child_path, expect_seed=seed, expect_scenario=scenario)
    oracle_committed = commit_summary(oracle_doc.frames)
    return Kill9Report(
        scenario=scenario, seed=seed, kill_after=kill_after,
        oracle_frames=oracle_frames, child_signal=-child.returncode,
        torn=child_doc.torn, resume_report=report,
        oracle_committed=oracle_committed,
        committed_match=report.committed == oracle_committed)
