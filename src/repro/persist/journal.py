"""CRC32-framed, length-prefixed write-ahead journal files.

The on-disk format is built for crash consistency by construction:

* the file opens with an 8-byte preamble ``b"SCRJRNL1"`` (magic + format
  version) written in the same first ``write`` as the header frame;
* every frame is ``<u32 length><u32 crc32(payload)><payload>`` with both
  integers little-endian and the payload a compact, sorted-keys JSON
  document (UTF-8);
* frames are only ever appended.

A process killed mid-write can therefore leave exactly one kind of
damage: a *torn tail* — a final frame whose length prefix promises more
bytes than the file holds, or whose payload fails the CRC.  Readers
detect that, drop the tail, and report ``torn=True``; every frame before
the tear is intact because it was fully framed before the next append
began.  Anything wrong *before* the tail (bad magic, unreadable header,
unsupported version) is structural and raises
:class:`~repro.errors.JournalError` instead.

Durability knobs: the writer buffers through a regular file object;
``flush()`` pushes to the OS, ``sync()`` additionally ``fsync``\\ s.  The
``fsync_every`` constructor argument syncs automatically every N frames
(None: only on close/explicit sync).  All journal I/O is metered into an
optional :class:`~repro.obs.metrics.MetricsRegistry` — frames, bytes,
flushes, fsyncs — so journal overhead is observable like any other
runtime cost.
"""

from __future__ import annotations

import dataclasses
import json
import os
import struct
import zlib
from typing import Any, Iterator

from ..errors import JournalError

#: File preamble: magic + format version.  Bump the digit on breaking
#: format changes; readers reject versions they do not understand.
MAGIC = b"SCRJRNL1"

#: ``<u32 length><u32 crc32>`` little-endian frame prefix.
_PREFIX = struct.Struct("<II")

#: Upper bound on a single frame's payload; anything larger is treated as
#: corruption (a torn length prefix can decode to garbage in the GBs).
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Well-known frame kinds (the ``"k"`` key of every payload).
HEADER = "header"
EVENT = "event"
DECISION = "decision"
SNAPSHOT = "snapshot"
END = "end"


def encode_frame(record: dict[str, Any]) -> bytes:
    """Serialize one record into a length-prefixed, CRC-framed blob."""
    payload = json.dumps(record, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise JournalError(f"frame payload of {len(payload)} bytes exceeds "
                           f"the {MAX_FRAME_BYTES}-byte frame limit")
    return _PREFIX.pack(len(payload), zlib.crc32(payload)) + payload


class JournalWriter:
    """Append-only writer for one journal file.

    The first appended record must be the header (``{"k": "header", ...}``);
    the writer stamps the preamble in front of it.  Use as a context
    manager or call :meth:`close` explicitly.
    """

    def __init__(self, path: str | os.PathLike, *,
                 fsync_every: int | None = None,
                 registry: Any = None):
        if fsync_every is not None and fsync_every < 1:
            raise JournalError("fsync_every must be >= 1 (or None)")
        self.path = os.fspath(path)
        self.fsync_every = fsync_every
        self._handle = open(self.path, "wb")
        self._handle.write(MAGIC)
        self.frames_written = 0
        self.bytes_written = len(MAGIC)
        self.fsyncs = 0
        self._registry = registry
        if registry is not None:
            registry.counter("journal_bytes_total").inc(len(MAGIC))

    def append(self, record: dict[str, Any]) -> int:
        """Frame and buffer one record; returns the frame's byte size."""
        if self._handle is None:
            raise JournalError(f"journal {self.path} is closed")
        if self.frames_written == 0 and record.get("k") != HEADER:
            raise JournalError("the first journal frame must be the header")
        blob = encode_frame(record)
        self._handle.write(blob)
        self.frames_written += 1
        self.bytes_written += len(blob)
        registry = self._registry
        if registry is not None:
            from ..obs.metrics import BYTE_BUCKETS
            registry.counter("journal_frames_total",
                             label=record.get("k", "?")).inc()
            registry.counter("journal_bytes_total").inc(len(blob))
            registry.histogram("journal_frame_bytes",
                               buckets=BYTE_BUCKETS).observe(len(blob))
        if (self.fsync_every is not None
                and self.frames_written % self.fsync_every == 0):
            self.sync()
        return len(blob)

    def flush(self) -> None:
        """Push buffered frames to the OS (no fsync)."""
        if self._handle is not None:
            self._handle.flush()

    def sync(self) -> None:
        """Flush and ``fsync``: frames so far survive a machine crash."""
        if self._handle is None:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.fsyncs += 1
        if self._registry is not None:
            self._registry.counter("journal_fsyncs_total").inc()

    def close(self) -> None:
        """Flush, sync and close (idempotent)."""
        if self._handle is None:
            return
        self.sync()
        self._handle.close()
        self._handle = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


@dataclasses.dataclass(slots=True)
class JournalDocument:
    """A fully read journal: header, intact frames, and tear diagnostics.

    ``frames`` excludes the header.  ``torn`` is True when trailing bytes
    failed the length/CRC check and were dropped; ``torn_reason`` says
    why and ``dropped_bytes`` how many bytes the tear cost.
    """

    path: str
    header: dict[str, Any]
    frames: list[dict[str, Any]]
    torn: bool = False
    torn_reason: str = ""
    dropped_bytes: int = 0

    @property
    def complete(self) -> bool:
        """True when the journal ends with an intact ``end`` frame."""
        return (not self.torn and bool(self.frames)
                and self.frames[-1].get("k") == END)

    def of_kind(self, kind: str) -> list[dict[str, Any]]:
        """All intact frames of one kind, in journal order."""
        return [frame for frame in self.frames if frame.get("k") == kind]


def _iter_frames(blob: bytes) -> Iterator[tuple[dict[str, Any], int]]:
    """Yield ``(record, end_offset)`` for each intact frame in ``blob``.

    Stops silently at the first torn frame; the caller compares the last
    yielded ``end_offset`` against ``len(blob)`` to detect the tear.
    """
    offset = 0
    size = len(blob)
    while offset < size:
        if size - offset < _PREFIX.size:
            return  # torn: partial prefix
        length, crc = _PREFIX.unpack_from(blob, offset)
        start = offset + _PREFIX.size
        if length > MAX_FRAME_BYTES or start + length > size:
            return  # torn: truncated payload (or garbage length)
        payload = blob[start:start + length]
        if zlib.crc32(payload) != crc:
            return  # torn: payload corrupted
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return  # torn: CRC collision over garbage; treat as a tear
        if not isinstance(record, dict):
            return
        offset = start + length
        yield record, offset


def read_journal(path: str | os.PathLike) -> JournalDocument:
    """Read and validate a journal; drop a torn tail instead of raising.

    Raises :class:`JournalError` only for structural damage that no crash
    can explain: missing/incorrect magic, an unsupported version, or a
    missing/unreadable header frame.
    """
    path = os.fspath(path)
    with open(path, "rb") as handle:
        blob = handle.read()
    if len(blob) < len(MAGIC) or blob[:len(MAGIC) - 1] != MAGIC[:-1]:
        raise JournalError(f"{path}: not a journal (bad magic)")
    if blob[:len(MAGIC)] != MAGIC:
        raise JournalError(
            f"{path}: unsupported journal version "
            f"{blob[len(MAGIC) - 1:len(MAGIC)]!r} (expected {MAGIC[-1:]!r})")
    body = blob[len(MAGIC):]
    records: list[dict[str, Any]] = []
    consumed = 0
    for record, end in _iter_frames(body):
        records.append(record)
        consumed = end
    torn = consumed < len(body)
    if not records or records[0].get("k") != HEADER:
        raise JournalError(f"{path}: missing or unreadable header frame")
    return JournalDocument(
        path=path, header=records[0], frames=records[1:], torn=torn,
        torn_reason="trailing bytes failed the length/CRC frame check"
        if torn else "",
        dropped_bytes=len(body) - consumed)
