"""Effect objects yielded by processes to the scheduler.

Processes in the runtime kernel are Python generator functions.  Instead of
performing blocking operations directly, a process *yields* an effect object
describing the operation; the scheduler interprets the effect and resumes the
generator with the operation's result.  This design keeps the whole system
single-threaded and deterministic: the only sources of nondeterminism are the
scheduler's seeded random choices.

The communication effects implement a synchronous rendezvous in the style of
CSP: a :class:`Send` blocks until a matching :class:`Receive` commits, and
vice versa.  Addresses are arbitrary hashable values; a process may hold
several *aliases* at once (its own name plus any role addresses it currently
plays), which is how script roles communicate without knowing which concrete
process enrolled.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Hashable

Address = Hashable
Tag = Hashable


class Effect:
    """Base class for everything a process may yield to the scheduler."""

    __slots__ = ()


@dataclasses.dataclass(frozen=True, slots=True)
class Send(Effect):
    """Offer a synchronous send of ``value`` to the process owning ``to``.

    ``to`` is an alias (a process name or a role address).  The optional
    ``tag`` discriminates logically distinct channels between the same pair
    of partners; both sides of a rendezvous must use equal tags.
    ``as_alias`` is the identity presented to the receiver; role contexts
    set it to the sending role's address so partners observe roles, not the
    concrete processes enrolled in them.
    """

    to: Address
    value: Any
    tag: Tag = None
    as_alias: Address | None = None


@dataclasses.dataclass(frozen=True, slots=True)
class Receive(Effect):
    """Offer a synchronous receive.

    ``frm`` names the alias of the expected sender; ``None`` accepts a
    message from any partner (the partners-unnamed convention, as in Ada's
    ``accept`` or the Francez extension of CSP).  The effect's result is the
    received value, or a :class:`ReceivedMessage` when ``with_sender`` is
    true.
    """

    frm: Address | None = None
    tag: Tag = None
    with_sender: bool = False


@dataclasses.dataclass(frozen=True, slots=True)
class ReceivedMessage:
    """Result of a ``Receive(..., with_sender=True)``: value plus sender alias."""

    value: Any
    sender: Address


@dataclasses.dataclass(frozen=True, slots=True)
class Select(Effect):
    """Block until one of several communication branches commits.

    ``branches`` is a sequence of :class:`Send` / :class:`Receive` effects
    whose boolean guards have already been evaluated by the caller (only
    enabled branches are listed).  The result is a :class:`SelectResult`
    naming the branch that committed.

    With ``immediate=True`` the select never blocks: if no branch can commit
    right now the result has ``index == ELSE_BRANCH`` (this models CSP's
    "else" / Ada's ``else`` part of a selective wait).

    ``timeout`` adds a timeout arm: if no branch commits within ``timeout``
    units of virtual time the offers are withdrawn and the result has
    ``index == TIMED_OUT_BRANCH`` (Ada's ``delay`` alternative).
    """

    branches: tuple[Send | Receive, ...]
    immediate: bool = False
    timeout: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "branches", tuple(self.branches))
        if self.timeout is not None:
            if self.immediate:
                raise ValueError("immediate select cannot also have a timeout")
            if self.timeout < 0:
                raise ValueError(f"negative select timeout: {self.timeout}")


#: Index reported by a Select whose ``immediate`` escape was taken.
ELSE_BRANCH = -1

#: Index reported by a Select whose timeout arm fired.
TIMED_OUT_BRANCH = -3


@dataclasses.dataclass(frozen=True, slots=True)
class SelectResult:
    """Outcome of a :class:`Select`.

    ``index`` is the position of the branch that committed (or
    :data:`ELSE_BRANCH`); ``value`` is the received value for a receive
    branch and ``None`` for a send branch; ``sender`` is the alias the
    partner used, for receive branches.
    """

    index: int
    value: Any = None
    sender: Address | None = None


@dataclasses.dataclass(frozen=True, slots=True)
class Delay(Effect):
    """Suspend the process for ``duration`` units of virtual time."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative delay: {self.duration}")


@dataclasses.dataclass(frozen=True, slots=True)
class WaitUntil(Effect):
    """Block until ``predicate()`` returns true.

    The predicate is re-evaluated whenever the scheduler's state may have
    changed (a process stepped, completed, or a rendezvous committed).  It
    must be side-effect free.
    """

    predicate: Callable[[], bool]
    description: str = "condition"


class _TimedOut:
    """Singleton result of a :class:`ReceiveTimeout` that expired."""

    _instance: "_TimedOut | None" = None

    def __new__(cls) -> "_TimedOut":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "TIMED_OUT"

    def __bool__(self) -> bool:
        return False


#: Distinguished (falsy) value returned by an expired :class:`ReceiveTimeout`.
TIMED_OUT = _TimedOut()


@dataclasses.dataclass(frozen=True, slots=True)
class ReceiveTimeout(Effect):
    """A :class:`Receive` that gives up after ``timeout`` virtual time units.

    The result is the received value (or :class:`ReceivedMessage` with
    ``with_sender=True``) when a rendezvous commits in time, and the
    distinguished :data:`TIMED_OUT` value otherwise.  This is the
    non-raising counterpart of :class:`Deadline`, convenient in
    retry loops: ``while (v := yield ReceiveTimeout(..., timeout=5)) is
    TIMED_OUT: ...``.
    """

    frm: Address | None = None
    tag: Tag = None
    with_sender: bool = False
    timeout: float = 0.0

    def __post_init__(self) -> None:
        if self.timeout < 0:
            raise ValueError(f"negative receive timeout: {self.timeout}")


@dataclasses.dataclass(frozen=True, slots=True)
class Deadline(Effect):
    """Run one communication effect under a deadline.

    ``effect`` is a :class:`Send`, :class:`Receive` or blocking
    :class:`Select`.  If no rendezvous commits within ``timeout`` units of
    virtual time, the pending offers are withdrawn and
    :class:`~repro.errors.TimeoutError` is raised *inside* the yielding
    process at the yield point — a blocked rendezvous expires instead of
    deadlocking.
    """

    effect: Send | Receive | Select
    timeout: float

    def __post_init__(self) -> None:
        if self.timeout < 0:
            raise ValueError(f"negative deadline: {self.timeout}")
        if isinstance(self.effect, Select) and self.effect.immediate:
            raise ValueError("an immediate select never blocks; "
                             "a deadline on it is meaningless")


@dataclasses.dataclass(frozen=True, slots=True)
class GetTime(Effect):
    """Return the current virtual time."""


@dataclasses.dataclass(frozen=True, slots=True)
class GetName(Effect):
    """Return the name of the executing process."""


@dataclasses.dataclass(frozen=True, slots=True)
class Spawn(Effect):
    """Create a new process running ``body`` and return its name.

    The paper's model is a fixed network, so user code rarely spawns; the
    translation layers use this to materialise supervisor processes.
    """

    name: Address
    body: Any  # a generator (already instantiated)


@dataclasses.dataclass(frozen=True, slots=True)
class AddAlias(Effect):
    """Register ``alias`` as an additional address of the running process."""

    alias: Address


@dataclasses.dataclass(frozen=True, slots=True)
class DropAlias(Effect):
    """Remove ``alias`` from the running process's addresses."""

    alias: Address


@dataclasses.dataclass(frozen=True, slots=True)
class QueryProcesses(Effect):
    """Return {name: finished?} for the given process names.

    Unknown names report as finished (a process that never existed can
    never communicate).  This powers CSP's distributed termination
    convention: a repetitive command may terminate when all its partners
    have.
    """

    names: tuple[Address, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "names", tuple(self.names))


@dataclasses.dataclass(frozen=True, slots=True)
class Trace(Effect):
    """Emit a user-level trace event visible to the verification layer."""

    kind: str
    details: dict[str, Any] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass(frozen=True, slots=True)
class Choice(Effect):
    """Ask the scheduler's seeded RNG to choose one of ``options``.

    Using this effect instead of ``random`` keeps process code reproducible
    under a fixed scheduler seed.
    """

    options: tuple[Any, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "options", tuple(self.options))
        if not self.options:
            raise ValueError("Choice requires at least one option")
