"""Incremental rendezvous matching: the alias/tag-indexed board.

:class:`IndexedBoard` keeps the *same* candidate-pair set the full-scan
:class:`~repro.runtime.board.RendezvousBoard` would derive, but maintains
it incrementally: instead of re-enumerating every send/receive pair after
every process step, it updates a live pair set on exactly the events that
can change matchability —

* :meth:`post` — a process blocked with new offers,
* :meth:`withdraw` — offers left the board (commit, timeout, interrupt),
* :meth:`on_alias_claimed` — an address gained an owner (enrollment,
  ``AddAlias``), which can route pending sends to a new target and
  authorize named receives,
* :meth:`on_alias_released` — an address lost its owner (role vacation,
  process death), which invalidates every pair routed through it.

Match-filter partitions (see ``Scheduler.match_filter``) are deliberately
*not* index events: a pair blocked by a partition stays in the live set
and is simply skipped at drain time, so a heal re-enables it at the next
settle with no re-enqueue bookkeeping — identical to the oracle, which
rediscovers the pair on its next scan.

Determinism argument (the candidate ordering invariant)
-------------------------------------------------------
The scheduler's seeded RNG picks from the candidate *list*, so the list
must be ordered identically to the full scan, which yields pairs in
(group-dict insertion order, send branch index, receive branch index).
Dict insertion order over currently-posted groups is exactly ascending
``OfferGroup.seq`` (a monotonic stamp assigned at post; withdrawing and
re-posting moves a group to the back of the dict *and* gives it a fresh,
larger stamp).  Each pair is therefore keyed by the integer triple
``(send.group.seq, send.index, recv.index)`` — unique, because a send
offer's target group is single-valued under the alias-owner map — and
:meth:`candidates` returns the pairs sorted by that key.  Sorting the
live pair set hence reproduces the full scan's output byte for byte,
which `tests/runtime/test_board_oracle.py` verifies differentially over
randomized workloads.
"""

from __future__ import annotations

from typing import Hashable, TYPE_CHECKING

from .board import Commit, Offer, OfferGroup, RendezvousBoard

if TYPE_CHECKING:  # pragma: no cover
    from .process import Process

#: Sort/dict key of one candidate pair: (send group seq, send index,
#: recv index) — see the module docstring's ordering invariant.
PairKey = tuple[int, int, int]

#: Sentinel for "no alias to unregister" in the drop path.
_NO_ALIAS = object()


class IndexedBoard(RendezvousBoard):
    """Rendezvous board with an incrementally maintained candidate set.

    The board needs the scheduler's live alias-owner mapping at *event*
    time, not just at query time: :meth:`bind` adopts it once (an owner
    dict may also be passed to the constructor for standalone use, e.g.
    unit tests).  The ``owner`` argument of :meth:`candidates` /
    :meth:`candidates_for` is accepted for interface compatibility and
    must be the bound mapping.
    """

    def __init__(self, owner: dict[Hashable, "Process"] | None = None):
        super().__init__()
        self._owner: dict[Hashable, "Process"] = owner if owner is not None \
            else {}
        # Offer buckets, keyed by the alias an offer *addresses*.
        self._sends_to: dict[Hashable, dict[Offer, None]] = {}
        self._recvs_from: dict[Hashable, dict[Offer, None]] = {}
        # The live candidate set and its removal registries.  Each pair
        # is filed under both participating process names (so a
        # withdrawal drops exactly the affected pairs in O(affected))
        # and under every alias its validity routes through (so an alias
        # release invalidates exactly the routed pairs).
        self._pairs: dict[PairKey, Commit] = {}
        self._pairs_by_group: dict[Hashable, dict[PairKey, None]] = {}
        self._pairs_by_alias: dict[Hashable, set[PairKey]] = {}
        self._dirty_events = 0
        # Buckets are deliberately kept when they empty: rendezvous churn
        # reuses the same alias/name keys over and over, and allocating a
        # fresh container per round both costs time and — because dicts
        # and sets are GC-tracked — drags extra cyclic-GC passes into the
        # hot path.  :meth:`compact` (called from ``Scheduler.reap``)
        # prunes the empties when the caller wants memory back.

    # ------------------------------------------------------------------
    # Wiring and introspection
    # ------------------------------------------------------------------

    def bind(self, owner: dict[Hashable, "Process"]) -> None:
        if self._groups or self._pairs:
            raise RuntimeError("cannot rebind a non-empty indexed board")
        self._owner = owner

    @property
    def needs_settle(self) -> bool:
        # Pairs blocked by a match filter stay in the set, so this can
        # answer True for a settle that then drains nothing — never the
        # reverse, which is what correctness needs.
        return bool(self._pairs)

    @property
    def index_size(self) -> int:
        return len(self._pairs)

    def compact(self) -> None:
        """Drop empty index buckets.

        The event handlers leave empty buckets in place (see ``__init__``)
        so steady-state churn never reallocates them; long-running hosts
        reclaim the memory here, e.g. via ``Scheduler.reap``.
        """
        for registry in (self._sends_to, self._recvs_from,
                         self._pairs_by_group, self._pairs_by_alias):
            for key in [k for k, bucket in registry.items() if not bucket]:
                del registry[key]

    @property
    def dirty_events(self) -> int:
        return self._dirty_events

    def introspect(self) -> dict[str, Hashable]:
        """Structure snapshot: base census plus index bucket shape.

        Bucket counts include the empties deliberately retained by the
        event handlers (see ``__init__``), so the report also shows how
        much bucket memory steady-state churn is holding onto.
        """
        info = super().introspect()
        send_depths = [len(bucket) for bucket in self._sends_to.values()]
        recv_depths = [len(bucket) for bucket in self._recvs_from.values()]
        info.update(
            pairs=len(self._pairs),
            dirty_events=self._dirty_events,
            send_buckets=len(self._sends_to),
            recv_buckets=len(self._recvs_from),
            alias_buckets=len(self._pairs_by_alias),
            max_send_bucket=max(send_depths, default=0),
            max_recv_bucket=max(recv_depths, default=0),
        )
        return info

    # ------------------------------------------------------------------
    # Pair set maintenance
    # ------------------------------------------------------------------

    @staticmethod
    def _key(send: Offer, recv: Offer) -> PairKey:
        return (send.group.seq, send.index, recv.index)

    def _add_pair(self, send: Offer, recv: Offer) -> None:
        pairs = self._pairs
        key = (send.group.seq, send.index, recv.index)
        if key in pairs:
            return
        pairs[key] = Commit(send, recv)
        by_group = self._pairs_by_group
        for name in (send.group.process.name, recv.group.process.name):
            bucket = by_group.get(name)
            if bucket is None:
                by_group[name] = {key: None}
            else:
                bucket[key] = None
        by_alias = self._pairs_by_alias
        bucket = by_alias.get(send.partner_alias)
        if bucket is None:
            by_alias[send.partner_alias] = {key}
        else:
            bucket.add(key)
        if recv.partner_alias is not None:
            bucket = by_alias.get(recv.partner_alias)
            if bucket is None:
                by_alias[recv.partner_alias] = {key}
            else:
                bucket.add(key)

    def _drop_pair(self, key: PairKey) -> None:
        commit = self._pairs.pop(key, None)
        if commit is None:
            return
        by_group = self._pairs_by_group
        for name in (commit.send.group.process.name,
                     commit.recv.group.process.name):
            bucket = by_group.get(name)
            if bucket is not None:
                bucket.pop(key, None)
        send_alias = commit.send.partner_alias
        recv_alias = commit.recv.partner_alias
        if recv_alias is None or recv_alias == send_alias:
            recv_alias = _NO_ALIAS
        for alias in (send_alias, recv_alias):
            if alias is _NO_ALIAS:
                continue
            bucket = self._pairs_by_alias.get(alias)
            if bucket is not None:
                bucket.discard(key)

    def _discover_for_send(self, send: Offer) -> None:
        """Add every valid pair for one posted send offer.

        The ``_matches`` conditions are inlined with the already-resolved
        routing facts factored out: ``target`` IS the owner of the send's
        partner alias, and ``peer_group is not send.group`` implies
        distinct processes (a process has at most one posted group).
        """
        owner = self._owner
        target = owner.get(send.partner_alias)
        if target is None:
            return
        peer_group = self._groups.get(target.name)
        if peer_group is None or peer_group is send.group:
            return
        sender = send.group.process
        tag = send.tag
        for peer in peer_group.offers:
            if peer.is_send or peer.tag != tag:
                continue
            frm = peer.partner_alias
            if frm is None or owner.get(frm) is sender:
                self._add_pair(send, peer)

    def _discover_for_recv(self, recv: Offer) -> None:
        """Add every valid pair for one posted receive offer.

        Same inlining: every send in ``self._sends_to[alias]`` already
        addresses ``alias``, and ``owner.get(alias) is process`` makes the
        receiver its routed target.
        """
        owner = self._owner
        group = recv.group
        process = group.process
        frm = recv.partner_alias
        tag = recv.tag
        for alias in process.aliases:
            if owner.get(alias) is not process:
                continue
            for send in self._sends_to.get(alias, ()):
                if send.group is group or send.tag != tag:
                    continue
                if frm is None or owner.get(frm) is send.group.process:
                    self._add_pair(send, recv)

    # ------------------------------------------------------------------
    # Board events
    # ------------------------------------------------------------------

    def post(self, group: OfferGroup) -> None:
        # Base-class post, inlined (this runs twice per rendezvous).
        name = group.process.name
        groups = self._groups
        if name in groups:
            raise RuntimeError(f"process {name!r} already has pending offers")
        self._post_seq += 1
        group.seq = self._post_seq
        groups[name] = group
        self._dirty_events += 1
        sends_to = self._sends_to
        recvs_from = self._recvs_from
        # Bucket and discover in one pass: offers within one group can
        # never pair with each other (same process), so discovering offer
        # i before offer i+1 is bucketed cannot miss or duplicate a pair.
        for offer in group.offers:
            if offer.is_send:
                alias = offer.partner_alias
                bucket = sends_to.get(alias)
                if bucket is None:
                    sends_to[alias] = {offer: None}
                else:
                    bucket[offer] = None
                self._discover_for_send(offer)
            else:
                alias = offer.partner_alias
                if alias is not None:
                    bucket = recvs_from.get(alias)
                    if bucket is None:
                        recvs_from[alias] = {offer: None}
                    else:
                        bucket[offer] = None
                self._discover_for_recv(offer)

    def withdraw(self, process_name: Hashable) -> OfferGroup | None:
        # Base-class withdraw, inlined (this runs twice per rendezvous).
        group = self._groups.pop(process_name, None)
        if group is None:
            return None
        if group.expiry is not None:
            group.expiry.cancel()
        self._dirty_events += 1
        sends_to = self._sends_to
        recvs_from = self._recvs_from
        for offer in group.offers:
            alias = offer.partner_alias
            if offer.is_send:
                bucket = sends_to.get(alias)
                if bucket is not None:
                    bucket.pop(offer, None)
            elif alias is not None:
                bucket = recvs_from.get(alias)
                if bucket is not None:
                    bucket.pop(offer, None)
        keys = self._pairs_by_group.get(process_name)
        if keys:
            for key in list(keys):
                self._drop_pair(key)
        return group

    def on_alias_claimed(self, alias: Hashable, process: "Process") -> None:
        """Route pending offers through the alias's new owner.

        Claiming can only *add* matches: sends addressed to ``alias`` now
        reach ``process``'s posted receives, and receives naming ``alias``
        as their source now accept ``process``'s posted sends.
        """
        self._dirty_events += 1
        peer_group = self._groups.get(process.name)
        if peer_group is None:
            return
        owner = self._owner
        for send in self._sends_to.get(alias, ()):
            if send.group is peer_group:
                continue
            for peer in peer_group.offers:
                if not peer.is_send and self._matches(send, peer, owner):
                    self._add_pair(send, peer)
        for recv in self._recvs_from.get(alias, ()):
            if recv.group is peer_group:
                continue
            for send in peer_group.offers:
                if send.is_send and self._matches(send, recv, owner):
                    self._add_pair(send, recv)

    def on_alias_released(self, alias: Hashable, process: "Process") -> None:
        """Invalidate every pair whose validity routes through ``alias``."""
        self._dirty_events += 1
        for key in list(self._pairs_by_alias.get(alias, ())):
            self._drop_pair(key)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def candidates(self, owner: dict[Hashable, "Process"]) -> list[Commit]:
        """The live pair set, in full-scan (post/branch) order."""
        pairs = self._pairs
        if not pairs:
            return []
        if len(pairs) == 1:
            return list(pairs.values())
        return [pairs[key] for key in sorted(pairs)]

    def candidates_for(self, group: OfferGroup,
                       owner: dict[Hashable, "Process"]) -> list[Commit]:
        """Matchable pairs involving ``group`` (which need not be posted).

        Used for the immediate-``Select`` emptiness probe; computed from
        the index buckets without touching the live pair set.
        """
        found: list[Commit] = []
        for offer in group.offers:
            if offer.is_send:
                target = owner.get(offer.partner_alias)
                if target is None:
                    continue
                peer_group = self._groups.get(target.name)
                if peer_group is None or peer_group is group:
                    continue
                for peer in peer_group.offers:
                    if not peer.is_send and self._matches(offer, peer, owner):
                        found.append(Commit(send=offer, recv=peer))
            else:
                process = group.process
                for alias in process.aliases:
                    if owner.get(alias) is not process:
                        continue
                    for send in self._sends_to.get(alias, ()):
                        if send.group is group:
                            continue
                        if self._matches(send, offer, owner):
                            found.append(Commit(send=send, recv=offer))
        return found
