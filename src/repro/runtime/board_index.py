"""Incremental rendezvous matching: the alias/tag-indexed board.

:class:`IndexedBoard` keeps the *same* candidate-pair set the full-scan
:class:`~repro.runtime.board.RendezvousBoard` would derive, but maintains
it incrementally: instead of re-enumerating every send/receive pair after
every process step, it updates a live pair set on exactly the events that
can change matchability —

* :meth:`post` — a process blocked with new offers,
* :meth:`withdraw` — offers left the board (commit, timeout, interrupt),
* :meth:`on_alias_claimed` — an address gained an owner (enrollment,
  ``AddAlias``), which can route pending sends to a new target and
  authorize named receives,
* :meth:`on_alias_released` — an address lost its owner (role vacation,
  process death), which invalidates every pair routed through it.

Match-filter partitions (see ``Scheduler.match_filter``) are deliberately
*not* index events: a pair blocked by a partition stays in the live set
and is simply skipped at drain time, so a heal re-enables it at the next
settle with no re-enqueue bookkeeping — identical to the oracle, which
rediscovers the pair on its next scan.

Incremental pair maintenance across the repost/withdraw cycle
-------------------------------------------------------------
A committed rendezvous withdraws both parties, and the survivor of a
select typically re-posts an *equivalent* offer group one step later (the
fan-in hub re-arming its select, a timeout loop retrying).  Tearing down
N live pairs at withdraw and re-deriving them at re-post makes every
commit O(live pairs) — the fan-in O(N²) cliff.  The board therefore
treats withdraw as *suspension*:

* A withdrawn group's offers leave the routing buckets (so discovery and
  ``candidates_for`` cannot see them), but the pairs in which the group
  is the **receiver** stay resident, merely invisible, and the group is
  parked in a re-post cache keyed by process name.  Pairs in which the
  group is the **sender** are dropped eagerly — their sort keys embed the
  sender's post stamp, which a re-post renews.
* :meth:`post` consults the cache: if the new group is offer-equivalent
  to the suspended one and the group's *cache stamp* is unchanged since
  suspension, the suspended group is adopted wholesale: its receive-side
  pairs become visible again untouched (their keys embed only the
  senders' stamps, which did not move), and only its send offers re-run
  discovery.  Any other event ordering misses the cache and sweeps the
  stale pairs before a from-scratch discovery.
* The stamp is deliberately *precise*, not a single global generation:
  it is ``_claim_gen`` (bumped by every alias claim — rare, and the one
  event that can silently re-route an existing posted send into a cached
  receive's match set) plus ``_target_act[name]`` — a per-process
  counter bumped each time a send offer enters the routing buckets whose
  addressed alias the process owns (send discovery resolves that owner
  anyway, so the bump is one dict update on an already-fetched name).
  Both terms are monotonic non-decreasing, so the stamp is unchanged iff
  no claim happened and no send arrived that a fresh discovery for this
  receiver could see.  Events that involve only *other* processes (a
  fan-in producer dying, a star hub re-targeting a different leaf) leave
  the stamp alone, which is what lets hub/leaf re-posts keep hitting
  under concurrent traffic.  A release of one of the suspended process's
  *own* aliases invalidates its entry directly (the stamp is forced to
  ``-1``, which no live stamp equals), and a claim of one is covered by
  the global claim bump — so the owned-alias set is pinned between
  suspension and hit, making the comparison sound.
* Alias claims and releases keep working on suspended pairs directly —
  they are still filed under ``_pairs_by_alias`` — so a cache hit can
  never resurrect a pair whose routing died while it was suspended.

The invariant that makes the arithmetic exact: **every resident pair's
sender is posted** (send-side pairs drop at the sender's withdraw), so a
resident pair is invisible if and only if its receiver is suspended, and
``len(_pairs) - _suspended_pairs`` is the exact visible-candidate count
in O(1).

Determinism argument (the candidate ordering invariant)
-------------------------------------------------------
The scheduler's seeded RNG picks from the candidate *list*, so the list
must be ordered identically to the full scan, which yields pairs in
(group-dict insertion order, send branch index, receive branch index).
Dict insertion order over currently-posted groups is exactly ascending
``OfferGroup.seq`` (a monotonic stamp assigned at post; withdrawing and
re-posting moves a group to the back of the dict *and* gives it a fresh,
larger stamp).  Each pair is therefore keyed by the integer triple
``(send.group.seq, send.index, recv.index)`` — unique, because a send
offer's target group is single-valued under the alias-owner map — and
the board maintains ``_order``, a sorted list of those keys, by bisect
insertion and deletion; no per-query sort ever runs.  A cache hit
preserves the invariant for free: the resumed group's receive-side pair
keys embed only sender stamps, and a receiver's position in the dict
does not order pairs.  Sorting-by-maintenance hence reproduces the full
scan's output byte for byte, which ``tests/runtime/test_board_oracle.py``
and ``tests/runtime/test_board_repost.py`` verify differentially over
randomized workloads.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Hashable, TYPE_CHECKING

from .board import Commit, Offer, OfferGroup, RendezvousBoard

if TYPE_CHECKING:  # pragma: no cover
    from random import Random

    from .process import Process

#: Sort/dict key of one candidate pair: (send group seq, send index,
#: recv index) — see the module docstring's ordering invariant.
PairKey = tuple[int, int, int]


class IndexedBoard(RendezvousBoard):
    """Rendezvous board with an incrementally maintained candidate set.

    The board needs the scheduler's live alias-owner mapping at *event*
    time, not just at query time: :meth:`bind` adopts it once (an owner
    dict may also be passed to the constructor for standalone use, e.g.
    unit tests).  The ``owner`` argument of :meth:`candidates` /
    :meth:`candidates_for` is accepted for interface compatibility and
    must be the bound mapping.
    """

    #: The scheduler's settle loop may use :attr:`candidate_count` and
    #: :meth:`pick` instead of materializing :meth:`candidates` when no
    #: match filter is installed.
    fast_pick = True

    def __init__(self, owner: dict[Hashable, "Process"] | None = None):
        super().__init__()
        self._owner: dict[Hashable, "Process"] = owner if owner is not None \
            else {}
        # Offer buckets, keyed by the alias an offer *addresses*.
        self._sends_to: dict[Hashable, dict[Offer, None]] = {}
        self._recvs_from: dict[Hashable, dict[Offer, None]] = {}
        # The resident pair set and its removal registries.  Each pair is
        # filed under its sender's and receiver's process names in two
        # side-partitioned registries (so a withdrawal drops exactly the
        # sender-side pairs and suspends the receiver-side ones, both in
        # O(affected)) and under every alias its validity routes through
        # (so an alias release invalidates exactly the routed pairs).
        self._pairs: dict[PairKey, Commit] = {}
        self._send_pairs: dict[Hashable, dict[PairKey, None]] = {}
        self._recv_pairs: dict[Hashable, dict[PairKey, None]] = {}
        self._pairs_by_alias: dict[Hashable, set[PairKey]] = {}
        # Sorted mirror of _pairs' keys: the maintained candidate order.
        self._order: list[PairKey] = []
        # Re-post cache: suspended groups keyed by process name, each
        # stamped (``cache_gen`` slot) with its cache stamp at
        # suspension.  See the module docstring.
        self._suspended: dict[Hashable, OfferGroup] = {}
        # Resident pairs whose receiver is currently suspended (each such
        # pair counted exactly once — see the visibility invariant).
        self._suspended_pairs = 0
        # The cache-stamp ingredients (module docstring): a global alias
        # claim counter plus per-target-process send-arrival counters.
        # Removal events (withdrawals, releases) edit resident pairs
        # directly and need no counter.
        self._claim_gen = 0
        self._target_act: dict[Hashable, int] = {}
        self._dirty_events = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._resumed_pairs = 0   # pairs reused across cache-hit re-posts
        self._swept_pairs = 0     # suspended pairs torn down on miss/compact
        # Buckets are deliberately kept when they empty: rendezvous churn
        # reuses the same alias/name keys over and over, and allocating a
        # fresh container per round both costs time and — because dicts
        # and sets are GC-tracked — drags extra cyclic-GC passes into the
        # hot path.  :meth:`compact` (called from ``Scheduler.reap``)
        # prunes the empties when the caller wants memory back.

    # ------------------------------------------------------------------
    # Wiring and introspection
    # ------------------------------------------------------------------

    def bind(self, owner: dict[Hashable, "Process"]) -> None:
        if self._groups or self._pairs:
            raise RuntimeError("cannot rebind a non-empty indexed board")
        self._owner = owner

    @property
    def needs_settle(self) -> bool:
        # Pairs blocked by a match filter stay in the set, so this can
        # answer True for a settle that then drains nothing — never the
        # reverse, which is what correctness needs.
        return len(self._pairs) > self._suspended_pairs

    @property
    def index_size(self) -> int:
        """Resident pairs, the suspended re-post cache included."""
        return len(self._pairs)

    @property
    def candidate_count(self) -> int:
        """Exact number of currently matchable pairs, in O(1)."""
        return len(self._pairs) - self._suspended_pairs

    @property
    def cache_hits(self) -> int:
        return self._cache_hits

    @property
    def swept_pairs(self) -> int:
        return self._swept_pairs

    def compact(self) -> None:
        """Sweep the re-post cache and drop empty index buckets.

        The event handlers leave empty buckets in place (see ``__init__``)
        and withdrawn groups parked in the re-post cache; long-running
        hosts reclaim both here, e.g. via ``Scheduler.reap``.  Sweeping a
        cache entry tears down its suspended pairs too — an orphaned
        suspended pair would collide with a later rediscovery.
        """
        for old in list(self._suspended.values()):
            self._sweep_stale(old)
        self._suspended.clear()
        # With no suspended entries left, no outstanding stamp references
        # the send-arrival counters — safe to reset them (they must never
        # be trimmed while a stamped entry could compare against them).
        self._target_act.clear()
        for registry in (self._sends_to, self._recvs_from,
                         self._send_pairs, self._recv_pairs,
                         self._pairs_by_alias):
            for key in [k for k, bucket in registry.items() if not bucket]:
                del registry[key]

    @property
    def dirty_events(self) -> int:
        return self._dirty_events

    def introspect(self) -> dict[str, Hashable]:
        """Structure snapshot: base census plus index bucket shape.

        Bucket counts include the empties deliberately retained by the
        event handlers (see ``__init__``), so the report also shows how
        much bucket memory steady-state churn is holding onto.
        """
        info = super().introspect()
        send_depths = [len(bucket) for bucket in self._sends_to.values()]
        recv_depths = [len(bucket) for bucket in self._recvs_from.values()]
        info.update(
            pairs=len(self._pairs),
            visible_pairs=len(self._pairs) - self._suspended_pairs,
            suspended_pairs=self._suspended_pairs,
            suspended_groups=len(self._suspended),
            cache_hits=self._cache_hits,
            cache_misses=self._cache_misses,
            resumed_pairs=self._resumed_pairs,
            swept_pairs=self._swept_pairs,
            dirty_events=self._dirty_events,
            send_buckets=len(self._sends_to),
            recv_buckets=len(self._recvs_from),
            alias_buckets=len(self._pairs_by_alias),
            max_send_bucket=max(send_depths, default=0),
            max_recv_bucket=max(recv_depths, default=0),
        )
        return info

    # ------------------------------------------------------------------
    # Pair set maintenance
    # ------------------------------------------------------------------

    @staticmethod
    def _key(send: Offer, recv: Offer) -> PairKey:
        return (send.group.seq, send.index, recv.index)

    def _add_pair(self, send: Offer, recv: Offer) -> None:
        pairs = self._pairs
        key = (send.group.seq, send.index, recv.index)
        if key in pairs:
            return
        pairs[key] = Commit(send, recv)
        order = self._order
        if not order or key > order[-1]:
            order.append(key)
        else:
            insort(order, key)
        registry = self._send_pairs
        name = send.group.process.name
        bucket = registry.get(name)
        if bucket is None:
            registry[name] = {key: None}
        else:
            bucket[key] = None
        registry = self._recv_pairs
        name = recv.group.process.name
        bucket = registry.get(name)
        if bucket is None:
            registry[name] = {key: None}
        else:
            bucket[key] = None
        by_alias = self._pairs_by_alias
        bucket = by_alias.get(send.partner_alias)
        if bucket is None:
            by_alias[send.partner_alias] = {key}
        else:
            bucket.add(key)
        if recv.partner_alias is not None:
            bucket = by_alias.get(recv.partner_alias)
            if bucket is None:
                by_alias[recv.partner_alias] = {key}
            else:
                bucket.add(key)

    def _drop_pair(self, key: PairKey) -> None:
        commit = self._pairs.pop(key, None)
        if commit is None:
            return
        send = commit.send
        recv = commit.recv
        if not recv.group.posted:
            self._suspended_pairs -= 1
        order = self._order
        if order[-1] == key:
            order.pop()
        else:
            del order[bisect_left(order, key)]
        bucket = self._send_pairs.get(send.group.process.name)
        if bucket is not None:
            bucket.pop(key, None)
        bucket = self._recv_pairs.get(recv.group.process.name)
        if bucket is not None:
            bucket.pop(key, None)
        by_alias = self._pairs_by_alias
        send_alias = send.partner_alias
        bucket = by_alias.get(send_alias)
        if bucket is not None:
            bucket.discard(key)
        recv_alias = recv.partner_alias
        if recv_alias is not None and recv_alias != send_alias:
            bucket = by_alias.get(recv_alias)
            if bucket is not None:
                bucket.discard(key)

    def _discover_for_send(self, send: Offer) -> None:
        """Add every valid pair for one posted send offer.

        The ``_matches`` conditions are inlined with the already-resolved
        routing facts factored out: ``target`` IS the owner of the send's
        partner alias, and ``peer_group is not send.group`` implies
        distinct processes (a process has at most one posted group).
        """
        owner = self._owner
        target = owner.get(send.partner_alias)
        if target is None:
            return
        # The cache-stamp bump (module docstring): this send is now
        # visible to ``target``, whose suspended entry — if it has one,
        # or ever gets one before this send leaves — must not hit.
        act = self._target_act
        name = target.name
        act[name] = act.get(name, 0) + 1
        peer_group = self._groups.get(name)
        if peer_group is None or peer_group is send.group:
            return
        sender = send.group.process
        tag = send.tag
        for peer in peer_group.offers:
            if peer.is_send or peer.tag != tag:
                continue
            frm = peer.partner_alias
            if frm is None or owner.get(frm) is sender:
                self._add_pair(send, peer)

    def _discover_for_recv(self, recv: Offer) -> None:
        """Add every valid pair for one posted receive offer.

        Same inlining: every send in ``self._sends_to[alias]`` already
        addresses ``alias``, and ``owner.get(alias) is process`` makes the
        receiver its routed target.
        """
        owner = self._owner
        group = recv.group
        process = group.process
        frm = recv.partner_alias
        tag = recv.tag
        for alias in process.aliases:
            if owner.get(alias) is not process:
                continue
            for send in self._sends_to.get(alias, ()):
                if send.group is group or send.tag != tag:
                    continue
                if frm is None or owner.get(frm) is send.group.process:
                    self._add_pair(send, recv)

    # ------------------------------------------------------------------
    # The re-post cache
    # ------------------------------------------------------------------

    # The cache-validity stamp for a process is ``_claim_gen +
    # _target_act.get(name, 0)``, computed inline at the two hot call
    # sites (withdraw stamps it, post compares it).  Both terms are
    # monotonic non-decreasing, and a release of an owned alias
    # force-invalidates the cache entry while a claim bumps the global
    # term — so an unchanged stamp proves no claim happened and no new
    # send a fresh discovery for the process could see arrived.

    @staticmethod
    def _equivalent(old: OfferGroup, new: OfferGroup) -> bool:
        """Same process, same shape: matching-relevant fields all equal.

        Send payloads are deliberately excluded — they never influence
        *whether* a pair matches — and refreshed at resume time instead.
        """
        if old.process is not new.process or old.plain is not new.plain:
            return False
        mine = old.offers
        theirs = new.offers
        if len(mine) != len(theirs):
            return False
        for a, b in zip(mine, theirs):
            if (a.is_send != b.is_send or a.tag != b.tag
                    or a.partner_alias != b.partner_alias
                    or a.with_sender != b.with_sender
                    or a.as_alias != b.as_alias):
                return False
        return True

    def _sweep_stale(self, old: OfferGroup) -> None:
        """Tear down a suspended group's cached receive-side pairs."""
        bucket = self._recv_pairs.get(old.process.name)
        if bucket:
            keys = list(bucket)
            self._swept_pairs += len(keys)
            for key in keys:
                self._drop_pair(key)

    def _resume(self, old: OfferGroup, new: OfferGroup) -> OfferGroup:
        """Adopt a suspended group wholesale on a cache hit.

        The cached receive-side pairs become visible again with zero
        per-pair work: visibility is derived from ``recv.group.posted``,
        their sort keys embed only sender stamps (unchanged), and their
        Commit objects still reference these very offer objects.  Send
        offers re-run discovery — their pair keys embed the fresh post
        stamp, exactly as the oracle re-orders a re-posted sender.
        """
        name = old.process.name
        self._dirty_events += 1
        self._post_seq += 1
        old.seq = self._post_seq
        old.posted = True
        old.expiry = None
        self._groups[name] = old
        cached = self._recv_pairs.get(name)
        if cached:
            self._suspended_pairs -= len(cached)
            self._resumed_pairs += len(cached)
        sends_to = self._sends_to
        recvs_from = self._recvs_from
        for mine, fresh in zip(old.offers, new.offers):
            alias = mine.partner_alias
            if mine.is_send:
                mine.value = fresh.value
                bucket = sends_to.get(alias)
                if bucket is None:
                    sends_to[alias] = {mine: None}
                else:
                    bucket[mine] = None
                self._discover_for_send(mine)
            elif alias is not None:
                bucket = recvs_from.get(alias)
                if bucket is None:
                    recvs_from[alias] = {mine: None}
                else:
                    bucket[mine] = None
        return old

    # ------------------------------------------------------------------
    # Board events
    # ------------------------------------------------------------------

    def post(self, group: OfferGroup) -> OfferGroup:
        """Register a blocked process's offers; returns the board's group.

        The returned group is the one actually on the board: ``group``
        itself, or — on a re-post cache hit — the adopted suspended group
        (offer payloads refreshed from ``group``).  Callers must use the
        returned object for anything compared by identity later (expiry
        timers, withdrawal checks).
        """
        # Base-class post, inlined (this runs twice per rendezvous).
        name = group.process.name
        groups = self._groups
        if name in groups:
            raise RuntimeError(f"process {name!r} already has pending offers")
        old = self._suspended.pop(name, None)
        if old is not None:
            if old.cache_gen == self._claim_gen \
                    + self._target_act.get(name, 0) \
                    and self._equivalent(old, group):
                self._cache_hits += 1
                return self._resume(old, group)
            self._cache_misses += 1
            self._sweep_stale(old)
        self._post_seq += 1
        group.seq = self._post_seq
        group.posted = True
        groups[name] = group
        self._dirty_events += 1
        sends_to = self._sends_to
        recvs_from = self._recvs_from
        # Bucket and discover in one pass: offers within one group can
        # never pair with each other (same process), so discovering offer
        # i before offer i+1 is bucketed cannot miss or duplicate a pair.
        for offer in group.offers:
            alias = offer.partner_alias
            if offer.is_send:
                bucket = sends_to.get(alias)
                if bucket is None:
                    sends_to[alias] = {offer: None}
                else:
                    bucket[offer] = None
                self._discover_for_send(offer)
            else:
                if alias is not None:
                    bucket = recvs_from.get(alias)
                    if bucket is None:
                        recvs_from[alias] = {offer: None}
                    else:
                        bucket[offer] = None
                self._discover_for_recv(offer)
        return group

    def withdraw(self, process_name: Hashable) -> OfferGroup | None:
        # Base-class withdraw, inlined (this runs twice per rendezvous).
        # Suspension, not teardown: offers leave the routing buckets and
        # sender-side pairs drop (their keys would re-stamp anyway), but
        # receive-side pairs stay resident — invisible until the group
        # either resumes through the re-post cache or its pairs die of
        # their senders' withdrawals / alias releases / a stale-miss sweep.
        group = self._groups.pop(process_name, None)
        if group is None:
            return None
        if group.expiry is not None:
            group.expiry.cancel()
        self._dirty_events += 1
        group.posted = False
        sends_to = self._sends_to
        recvs_from = self._recvs_from
        for offer in group.offers:
            alias = offer.partner_alias
            if offer.is_send:
                bucket = sends_to.get(alias)
                if bucket is not None:
                    bucket.pop(offer, None)
            elif alias is not None:
                bucket = recvs_from.get(alias)
                if bucket is not None:
                    bucket.pop(offer, None)
        send_bucket = self._send_pairs.get(process_name)
        if send_bucket:
            for key in list(send_bucket):
                self._drop_pair(key)
        recv_bucket = self._recv_pairs.get(process_name)
        if recv_bucket:
            self._suspended_pairs += len(recv_bucket)
        group.cache_gen = self._claim_gen \
            + self._target_act.get(process_name, 0)
        self._suspended[process_name] = group
        return group

    def on_alias_claimed(self, alias: Hashable, process: "Process") -> None:
        """Route pending offers through the alias's new owner.

        Claiming can only *add* matches: sends addressed to ``alias`` now
        reach ``process``'s posted receives, and receives naming ``alias``
        as their source now accept ``process``'s posted sends.  A claim
        bumps ``_claim_gen`` — it can re-route a posted send into a
        suspended receiver's match set without touching any send-arrival
        counter.  The bump also covers the claimer's own cache entry:
        every stamp term is non-negative and non-decreasing, so growing
        the owned-alias set under a strictly larger claim counter can
        never reproduce the suspension-time stamp.
        """
        self._dirty_events += 1
        self._claim_gen += 1
        peer_group = self._groups.get(process.name)
        if peer_group is None:
            return
        owner = self._owner
        for send in self._sends_to.get(alias, ()):
            if send.group is peer_group:
                continue
            for peer in peer_group.offers:
                if not peer.is_send and self._matches(send, peer, owner):
                    self._add_pair(send, peer)
        for recv in self._recvs_from.get(alias, ()):
            if recv.group is peer_group:
                continue
            for send in peer_group.offers:
                if send.is_send and self._matches(send, recv, owner):
                    self._add_pair(send, recv)

    def on_alias_released(self, alias: Hashable, process: "Process") -> None:
        """Invalidate every pair whose validity routes through ``alias``.

        Suspended pairs are resident in the alias registry too, so a
        release reaches into the re-post cache exactly as it reaches the
        visible set — which is what makes cache hits provably safe.  The
        former owner's own cache entry is force-invalidated (its
        owned-alias set shrank, which the stamp sum cannot express);
        everyone else's stamps are untouched, so e.g. a fan-in hub keeps
        hitting its cache across producer deaths.
        """
        self._dirty_events += 1
        entry = self._suspended.get(process.name)
        if entry is not None:
            entry.cache_gen = -1
        for key in list(self._pairs_by_alias.get(alias, ())):
            self._drop_pair(key)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def candidates(self, owner: dict[Hashable, "Process"]) -> list[Commit]:
        """The visible pair set, in full-scan (post/branch) order."""
        pairs = self._pairs
        if len(pairs) == self._suspended_pairs:
            return []
        if not self._suspended_pairs:
            return [pairs[key] for key in self._order]
        return [commit for key in self._order
                if (commit := pairs[key]).recv.group.posted]

    def pick(self, rng: "Random") -> Commit | None:
        """Draw one candidate exactly as ``rng.choice(candidates())`` would.

        The fast path indexes the maintained order directly — no list is
        built, no sort runs — and consumes the identical RNG draw
        (``choice`` only reads ``len`` and one item), so a run is
        byte-identical whichever path executed.  Returns ``None`` with no
        RNG consumption when no pair is visible, mirroring the settle
        loop's no-candidates exit.
        """
        pairs = self._pairs
        suspended = self._suspended_pairs
        if len(pairs) == suspended:
            return None
        if not suspended:
            return pairs[rng.choice(self._order)]
        visible = [commit for key in self._order
                   if (commit := pairs[key]).recv.group.posted]
        return rng.choice(visible)

    def candidates_for(self, group: OfferGroup,
                       owner: dict[Hashable, "Process"]) -> list[Commit]:
        """Matchable pairs involving ``group`` (which need not be posted).

        Used for the immediate-``Select`` emptiness probe; computed from
        the index buckets without touching the live pair set.
        """
        found: list[Commit] = []
        for offer in group.offers:
            if offer.is_send:
                target = owner.get(offer.partner_alias)
                if target is None:
                    continue
                peer_group = self._groups.get(target.name)
                if peer_group is None or peer_group is group:
                    continue
                for peer in peer_group.offers:
                    if not peer.is_send and self._matches(offer, peer, owner):
                        found.append(Commit(send=offer, recv=peer))
            else:
                process = group.process
                for alias in process.aliases:
                    if owner.get(alias) is not process:
                        continue
                    for send in self._sends_to.get(alias, ()):
                        if send.group is group:
                            continue
                        if self._matches(send, offer, owner):
                            found.append(Commit(send=send, recv=offer))
        return found
