"""Kernel instrumentation: the sink interface the scheduler reports into.

The kernel stays observability-agnostic: it knows only this tiny interface.
A :class:`Sink` receives low-level callbacks the trace alone cannot carry —
when a process *posted* its rendezvous offers (so match latency is
measurable), when a commit happened (with board/waiter depth at that
instant), and when the transport charged a message.  Everything derivable
from :class:`~repro.runtime.tracing.TraceEvent` streams arrives through
:meth:`Sink.on_event` instead, via a tracer listener.

The default sink is :data:`NULL_SINK`, a null object that is *falsy*: hot
paths guard each callback with ``if self.sink:``, so an uninstrumented
scheduler pays one truthiness check per call site and nothing more.
Concrete sinks live in :mod:`repro.obs`; the kernel never imports them.
"""

from __future__ import annotations

from typing import Any, Hashable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .tracing import TraceEvent


class Sink:
    """Base instrumentation sink: every callback is a no-op.

    Subclass and override what you need; unknown data must be tolerated
    (the kernel may grow new callbacks).  A real sink is truthy, which is
    what arms the kernel's ``if self.sink:`` guards.
    """

    def __bool__(self) -> bool:
        return True

    def on_event(self, event: "TraceEvent") -> None:
        """A trace event was emitted (delivered via a tracer listener)."""

    def on_offer_posted(self, time: float, process: Hashable) -> None:
        """``process`` just blocked on a group of rendezvous offers."""

    def on_commit(self, time: float, sender: Hashable, receiver: Hashable,
                  board_size: int, waiter_count: int) -> None:
        """A rendezvous committed; depths are sampled after the removal."""

    def on_index(self, time: float, pairs: int, dirty_events: int) -> None:
        """Matcher-index depth sample, taken at each commit.

        ``pairs`` is the number of live candidate pairs the incremental
        board holds; ``dirty_events`` the cumulative count of index
        maintenance events (posts, withdrawals, alias claims/releases).
        Both are 0 when the scheduler runs the full-scan oracle board.
        """

    def on_message(self, time: float, src: Any, dst: Any,
                   latency: float) -> None:
        """The network transport charged one message ``src`` -> ``dst``."""


class NullSink(Sink):
    """The no-op sink; falsy so guarded call sites skip the call entirely."""

    def __bool__(self) -> bool:
        return False


#: Shared null object installed on every uninstrumented scheduler/transport.
NULL_SINK = NullSink()
