"""Kernel instrumentation: the sink interface the scheduler reports into.

The kernel stays observability-agnostic: it knows only this tiny interface.
A :class:`Sink` receives low-level callbacks the trace alone cannot carry —
when a process *posted* its rendezvous offers (so match latency is
measurable), when a commit happened (with board/waiter depth at that
instant), and when the transport charged a message.  Everything derivable
from :class:`~repro.runtime.tracing.TraceEvent` streams arrives through
:meth:`Sink.on_event` instead, via a tracer listener.

The default sink is :data:`NULL_SINK`, a null object that is *falsy*: hot
paths guard each callback with ``if self.sink:``, so an uninstrumented
scheduler pays one truthiness check per call site and nothing more.
Concrete sinks live in :mod:`repro.obs`; the kernel never imports them.
"""

from __future__ import annotations

from typing import Any, Hashable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .tracing import TraceEvent


class Sink:
    """Base instrumentation sink: every callback is a no-op.

    Subclass and override what you need; unknown data must be tolerated
    (the kernel may grow new callbacks).  A real sink is truthy, which is
    what arms the kernel's ``if self.sink:`` guards.
    """

    def __bool__(self) -> bool:
        return True

    def on_event(self, event: "TraceEvent") -> None:
        """A trace event was emitted (delivered via a tracer listener)."""

    def on_offer_posted(self, time: float, process: Hashable) -> None:
        """``process`` just blocked on a group of rendezvous offers."""

    def on_commit(self, time: float, sender: Hashable, receiver: Hashable,
                  board_size: int, waiter_count: int) -> None:
        """A rendezvous committed; depths are sampled after the removal."""

    def on_index(self, time: float, pairs: int, dirty_events: int,
                 cache_hits: int, swept_pairs: int) -> None:
        """Matcher-index depth sample, taken at each commit.

        ``pairs`` is the number of resident candidate pairs the
        incremental board holds (the suspended re-post cache included);
        ``dirty_events`` the cumulative count of index maintenance events
        (posts, withdrawals, alias claims/releases); ``cache_hits`` the
        cumulative re-post pair-cache hits and ``swept_pairs`` the
        cumulative suspended pairs torn down by stale-cache sweeps.  All
        are 0 when the scheduler runs the full-scan oracle board.
        """

    def on_message(self, time: float, src: Any, dst: Any,
                   latency: float) -> None:
        """The network transport charged one message ``src`` -> ``dst``."""

    def on_decision(self, time: float, kind: str, subject: Hashable,
                    payload: Any) -> None:
        """The scheduler resolved a decision the trace does not carry.

        ``kind`` is ``"choice"`` (a ``Choice`` effect was drawn from the
        seeded RNG; ``payload`` is the picked option) or ``"timer"`` (an
        armed timer fired; ``subject`` is its owner, ``payload`` its heap
        sequence number).  Together with the trace events these callbacks
        cover every nondeterminism-resolving step, which is what the
        durable journal (:mod:`repro.persist`) records and replays.
        """

    def on_phase(self, phase: str, ns: int) -> None:
        """``ns`` clock units were just spent inside kernel phase ``phase``.

        The phase taxonomy (see DESIGN.md §13): ``dispatch`` (one process
        step: resume + effect handling), ``match`` (candidate-set queries
        and match-filter passes), ``commit`` (performing a committed
        rendezvous, journal time excluded), ``journal`` (the commit-cadence
        hook, i.e. the durable recorder), ``settle`` (settle-loop overhead
        and waiter polling, the residual of a settle pass), ``timers``
        (virtual-clock advances: heap pops and timer actions), and ``run``
        (one whole ``Scheduler.run``, emitted last — the denominator for
        percentage-of-wall attribution).  Readings come from the
        scheduler's ``prof_clock`` (``time.perf_counter_ns`` by default;
        tests install a deterministic tick counter).  Only emitted while
        an installed sink overrides this method — an uninstrumented
        scheduler never reads the clock.
        """

    def on_settle(self, time: float, commits: int, rounds: int,
                  queries: int, candidates: int, waiters_polled: int,
                  index_pairs: int, timer_ops: int) -> None:
        """One settle pass finished; its work counters, all deterministic.

        ``commits`` rendezvous committed this pass over ``rounds``
        fixpoint rounds; ``queries`` candidate-set queries returned
        ``candidates`` matchable pairs in total; ``waiters_polled``
        condition predicates were evaluated.  ``index_pairs`` is the peak
        candidate-set depth observed during the pass (the board drains as
        commits land, so a post-pass sample would always read ~0) and
        ``timer_ops`` is the scheduler-lifetime cumulative
        count of timer-heap operations (pushes, fires, cancelled pops) —
        a gauge, so the last sample is the run total.
        """


class TeeSink(Sink):
    """Fan every callback out to several sinks, in order.

    Lets two consumers — say a metrics sink and a journal recorder —
    share one scheduler without either knowing about the other.  Falsy
    sinks are dropped at construction, and a tee over nothing is itself
    falsy, so the kernel's ``if self.sink:`` guards keep working.
    """

    def __init__(self, *sinks: Sink):
        self.sinks: list[Sink] = [sink for sink in sinks if sink]

    def __bool__(self) -> bool:
        return bool(self.sinks)

    def on_event(self, event: "TraceEvent") -> None:
        for sink in self.sinks:
            sink.on_event(event)

    def on_offer_posted(self, time: float, process: Hashable) -> None:
        for sink in self.sinks:
            sink.on_offer_posted(time, process)

    def on_commit(self, time: float, sender: Hashable, receiver: Hashable,
                  board_size: int, waiter_count: int) -> None:
        for sink in self.sinks:
            sink.on_commit(time, sender, receiver, board_size, waiter_count)

    def on_index(self, time: float, pairs: int, dirty_events: int,
                 cache_hits: int, swept_pairs: int) -> None:
        for sink in self.sinks:
            sink.on_index(time, pairs, dirty_events, cache_hits,
                          swept_pairs)

    def on_message(self, time: float, src: Any, dst: Any,
                   latency: float) -> None:
        for sink in self.sinks:
            sink.on_message(time, src, dst, latency)

    def on_decision(self, time: float, kind: str, subject: Hashable,
                    payload: Any) -> None:
        for sink in self.sinks:
            sink.on_decision(time, kind, subject, payload)

    def on_phase(self, phase: str, ns: int) -> None:
        for sink in self.sinks:
            sink.on_phase(phase, ns)

    def on_settle(self, time: float, commits: int, rounds: int,
                  queries: int, candidates: int, waiters_polled: int,
                  index_pairs: int, timer_ops: int) -> None:
        for sink in self.sinks:
            sink.on_settle(time, commits, rounds, queries, candidates,
                           waiters_polled, index_pairs, timer_ops)


def sink_overrides(sink: Sink, name: str) -> bool:
    """Does ``sink`` actually implement callback ``name``?

    Class-level detection (per-instance monkeypatches are not seen), the
    basis of the scheduler's capability flags: a hot-path call site only
    dispatches callbacks the installed sink's class overrides.  A
    :class:`TeeSink` claims a callback iff any member does, so wrapping a
    commit-only recorder in a tee does not suddenly arm every hook.
    """
    if isinstance(sink, TeeSink):
        return any(sink_overrides(member, name) for member in sink.sinks)
    return getattr(type(sink), name) is not getattr(Sink, name)


class NullSink(Sink):
    """The no-op sink; falsy so guarded call sites skip the call entirely."""

    def __bool__(self) -> bool:
        return False


#: Shared null object installed on every uninstrumented scheduler/transport.
NULL_SINK = NullSink()
