"""Trace capture for the runtime kernel.

Every observable action of the scheduler is recorded as a
:class:`TraceEvent`.  Traces are the raw material of the verification layer
(:mod:`repro.verification`): the paper's semantic guarantees (successive
activations, Figure 2's ``u=x and y=v``, broadcast delivery, lock safety)
are all checked as predicates over these event sequences.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Callable, Iterable, Iterator

#: Longest rendering of a single ``details`` value before truncation.
VALUE_LIMIT = 60


def compact_role(role: Any) -> str:
    """Render a role id compactly: ``('recipient', 3)`` -> ``recipient[3]``."""
    if (isinstance(role, tuple) and len(role) == 2
            and isinstance(role[0], str)):
        return f"{role[0]}[{role[1]}]"
    return role if isinstance(role, str) else repr(role)


def compact_value(value: Any, limit: int = VALUE_LIMIT) -> str:
    """Render one ``details`` value for human-readable traces.

    Role addresses (duck-typed: anything with ``performance_id`` and
    ``role_id``, since the kernel cannot import the core layer) become
    ``perf:role``; everything else is ``repr``-ed and truncated to
    ``limit`` characters with an ellipsis.
    """
    performance = getattr(value, "performance_id", None)
    role = getattr(value, "role_id", None)
    if performance is not None and role is not None:
        text = f"{performance}:{compact_role(role)}"
    else:
        text = repr(value)
    if len(text) > limit:
        text = text[:limit - 3] + "..."
    return text


class EventKind(enum.Enum):
    """Kinds of events the scheduler and the script layer emit."""

    SPAWN = "spawn"
    PROC_DONE = "proc_done"
    PROC_FAIL = "proc_fail"
    COMM = "comm"                     # a rendezvous committed
    DELAY = "delay"
    TIMEOUT = "timeout"               # a Deadline/ReceiveTimeout/Select expired
    INTERRUPT = "interrupt"           # an exception was thrown into a process
    FAULT = "fault"                   # an injected fault event fired
    RECOVERY = "recovery"             # a recovery action (restart/retry/...)
    # Script-layer events (emitted by repro.core):
    INSTANCE_CREATED = "instance_created"
    ENROLL_REQUEST = "enroll_request"
    ENROLL_ACCEPT = "enroll_accept"
    PERFORMANCE_START = "performance_start"
    ROLE_START = "role_start"
    ROLE_END = "role_end"
    ROLE_CRASH = "role_crash"         # a filled role's process crashed
    PERFORMANCE_END = "performance_end"
    PERFORMANCE_ABORT = "performance_abort"
    # User-defined events (via the Trace effect):
    USER = "user"


@dataclasses.dataclass(slots=True, eq=False)
class TraceEvent:
    """One observable action.  Treat as immutable once emitted.

    ``seq`` is a global monotonically increasing sequence number (the total
    order in which the single-threaded scheduler performed actions); ``time``
    is the virtual clock at the moment of the action.

    Not a frozen dataclass: events are allocated on the scheduler hot path
    (one per commit) and ``frozen=True`` triples construction cost by
    routing every field through ``object.__setattr__``.  ``eq=False``
    keeps identity comparison/hashing, as frozen-by-convention data wants.
    """

    seq: int
    time: float
    kind: EventKind
    process: Any
    details: dict[str, Any]

    def get(self, key: str, default: Any = None) -> Any:
        """Convenience accessor into ``details``."""
        return self.details.get(key, default)

    def __str__(self) -> str:
        details = ", ".join(f"{k}={compact_value(v)}"
                            for k, v in self.details.items())
        return f"[{self.seq:>5} t={self.time:g}] {self.kind.value} {self.process!r} {details}"


class Tracer:
    """Accumulates :class:`TraceEvent` objects in order.

    A tracer may be shared between several scheduler runs; sequence numbers
    keep increasing, so concatenated traces remain totally ordered.
    """

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []
        self._seq = 0
        self._listeners: list[Callable[[TraceEvent], None]] = []

    def emit(self, time: float, kind: EventKind, process: Any,
             **details: Any) -> TraceEvent:
        """Record and return a new event."""
        event = TraceEvent(self._seq, time, kind, process, details)
        self._seq += 1
        self._events.append(event)
        if self._listeners:
            for listener in self._listeners:
                listener(event)
        return event

    def add_listener(self, listener: Callable[[TraceEvent], None]) -> None:
        """Call ``listener`` with every subsequently emitted event."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[TraceEvent], None]) -> None:
        """Detach a listener previously added (idempotent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    @property
    def events(self) -> list[TraceEvent]:
        """All events recorded so far, in order (the live, mutable list)."""
        return self._events

    def snapshot(self) -> tuple[TraceEvent, ...]:
        """An immutable copy of the events recorded so far.

        Analysis should prefer this over :attr:`events`: a snapshot can
        never race a later :meth:`clear` or the emissions of a shared
        tracer's next run.  All :mod:`repro.verification` helpers accept
        either a tracer or a plain event sequence such as this.
        """
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def of_kind(self, *kinds: EventKind) -> list[TraceEvent]:
        """Events whose kind is one of ``kinds``, in order."""
        wanted = set(kinds)
        return [e for e in self._events if e.kind in wanted]

    def for_process(self, process: Any) -> list[TraceEvent]:
        """Events attributed to ``process``, in order."""
        return [e for e in self._events if e.process == process]

    def user_events(self, kind: str | None = None) -> list[TraceEvent]:
        """User events (``Trace`` effect), optionally filtered by subkind."""
        events = self.of_kind(EventKind.USER)
        if kind is None:
            return events
        return [e for e in events if e.get("user_kind") == kind]

    def clear(self) -> None:
        """Drop all recorded events (sequence numbering continues)."""
        self._events.clear()


def format_trace(events: Iterable[TraceEvent]) -> str:
    """Render a trace as a human-readable multi-line string."""
    return "\n".join(str(e) for e in events)
