"""Process objects for the runtime kernel.

A process is a Python generator driven by the scheduler.  The generator
yields :class:`~repro.runtime.effects.Effect` objects and is resumed with
each effect's result.  Sub-behaviours compose with ``yield from``, which is
how the script layer realises the paper's requirement that a role is "a
logical continuation of the enrolling process": the role body is a
sub-generator executed inside the enrolling process, not a separate process.
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Hashable

from ..errors import RuntimeKernelError

ProcessBody = Generator[Any, Any, Any]


class ProcessState(enum.Enum):
    """Lifecycle states of a process."""

    READY = "ready"        # runnable, waiting its turn in the ready queue
    BLOCKED = "blocked"    # waiting on a rendezvous, timer, or condition
    DONE = "done"          # generator returned (or was killed)
    FAILED = "failed"      # generator raised an uncaught exception


#: Checked on every ready-queue pop; precomputed so the ``finished``
#: property does not rebuild the tuple per call.
_FINISHED_STATES = (ProcessState.DONE, ProcessState.FAILED)


class Process:
    """A scheduled generator with a name and a set of address aliases.

    ``name`` is the primary address of the process.  ``aliases`` contains the
    primary name plus any additional addresses (role addresses, for
    instance) registered via the ``AddAlias`` effect.
    """

    __slots__ = ("name", "body", "state", "aliases", "result", "error",
                 "killed", "_blocked_reason", "steps", "epoch",
                 "_resume_value", "_resume_exc")

    def __init__(self, name: Hashable, body: ProcessBody):
        if not hasattr(body, "send"):
            raise RuntimeKernelError(
                f"process {name!r} body must be a generator (did you call the "
                f"generator function?), got {type(body).__name__}")
        self.name = name
        self.body = body
        self.state = ProcessState.READY
        self.aliases: set[Hashable] = {name}
        self.result: Any = None
        self.error: BaseException | None = None
        self.killed = False
        self._blocked_reason: Any = ""
        self.steps = 0
        # Epoch of the latest scheduled resumption.  Timer callbacks capture
        # the epoch current when they were armed and become no-ops if the
        # process was resumed some other way in between (e.g. an interrupt
        # cancelling a Delay, or a timeout racing a commit).
        self.epoch = 0
        # Value or exception to deliver at the next resumption.
        self._resume_value: Any = None
        self._resume_exc: BaseException | None = None

    @property
    def blocked_reason(self) -> str:
        """What the process is blocked on, for diagnostics.

        The scheduler hot path stores a zero-argument callable here so the
        (string-building) description is only rendered when something —
        a deadlock report, a debugger — actually reads it.
        """
        reason = self._blocked_reason
        return reason() if callable(reason) else reason

    @blocked_reason.setter
    def blocked_reason(self, reason: Any) -> None:
        self._blocked_reason = reason

    def set_resume(self, value: Any = None) -> None:
        """Arrange for the generator to be resumed with ``value``."""
        self.epoch += 1
        self._resume_value = value
        self._resume_exc = None

    def set_resume_exception(self, exc: BaseException) -> None:
        """Arrange for ``exc`` to be thrown into the generator."""
        self.epoch += 1
        self._resume_value = None
        self._resume_exc = exc

    def advance(self) -> Any:
        """Resume the generator once; return the yielded effect.

        Raises ``StopIteration`` when the generator returns and propagates
        any exception the generator raises.  The caller (the scheduler) is
        responsible for state transitions.
        """
        self.steps += 1
        if self._resume_exc is not None:
            exc, self._resume_exc = self._resume_exc, None
            return self.body.throw(exc)
        value, self._resume_value = self._resume_value, None
        return self.body.send(value)

    @property
    def finished(self) -> bool:
        """True once the process can never run again."""
        return self.state in _FINISHED_STATES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {self.state.value}>"
