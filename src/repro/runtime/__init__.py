"""Deterministic cooperative concurrency kernel.

This package is the substrate every other layer builds on: processes are
generator functions yielding effect objects; a seeded scheduler with a
virtual clock interprets the effects.  See :mod:`repro.runtime.effects` for
the effect vocabulary and :mod:`repro.runtime.scheduler` for the execution
model.
"""

from .board import Commit, RendezvousBoard
from .board_index import IndexedBoard
from .board_oracle import OracleBoard
from .effects import (ELSE_BRANCH, TIMED_OUT, TIMED_OUT_BRANCH, AddAlias,
                      Choice, Deadline, Delay, DropAlias, Effect, GetName,
                      GetTime, QueryProcesses, Receive, ReceivedMessage,
                      ReceiveTimeout, Select, SelectResult, Send, Spawn,
                      Trace, WaitUntil)
from .instrument import NULL_SINK, NullSink, Sink, TeeSink
from .process import Process, ProcessState
from .scheduler import MatchFilter, RunResult, Scheduler, run_processes
from .tracing import EventKind, TraceEvent, Tracer, format_trace

__all__ = [
    "AddAlias",
    "Choice",
    "Commit",
    "Deadline",
    "Delay",
    "DropAlias",
    "ELSE_BRANCH",
    "MatchFilter",
    "NULL_SINK",
    "NullSink",
    "ReceiveTimeout",
    "Sink",
    "TIMED_OUT",
    "TIMED_OUT_BRANCH",
    "Effect",
    "EventKind",
    "GetName",
    "GetTime",
    "IndexedBoard",
    "OracleBoard",
    "Process",
    "ProcessState",
    "QueryProcesses",
    "Receive",
    "ReceivedMessage",
    "RendezvousBoard",
    "RunResult",
    "Scheduler",
    "Select",
    "SelectResult",
    "Send",
    "Spawn",
    "TeeSink",
    "Trace",
    "TraceEvent",
    "Tracer",
    "WaitUntil",
    "format_trace",
    "run_processes",
]
