"""The deterministic cooperative scheduler.

The scheduler owns a set of generator-based processes, a virtual clock, a
rendezvous board for synchronous communication, a set of condition waiters,
and a timer queue.  It runs processes one step at a time from a FIFO ready
queue; all nondeterminism (choice among matchable rendezvous pairs, the
``Choice`` effect) is drawn from a single seeded RNG, so a run is a pure
function of the initial processes and the seed.

Virtual time only advances when no process is runnable, exactly like a
discrete-event simulator.  A *transport* hook may impose per-message latency
(see :mod:`repro.net`), in which case both parties of a committed rendezvous
resume after the latency has elapsed — the synchronous-communication analogue
of a network link.
"""

from __future__ import annotations

import heapq
import random
import struct
import zlib
from collections import deque
from time import perf_counter_ns
from typing import Any, Callable, Hashable, Iterable, Mapping

from ..errors import (DeadlockError, DeliveryFailed, InvalidEffectError,
                      ProcessFailure, RuntimeKernelError, StepLimitExceeded,
                      TimeoutError, UnknownProcessError)
from . import board as board_mod
from .board import OfferGroup, RendezvousBoard, make_group
from .board_index import IndexedBoard
from .effects import (TIMED_OUT, TIMED_OUT_BRANCH, AddAlias, Choice, Deadline,
                      Delay, DropAlias, Effect, GetName, GetTime,
                      QueryProcesses, Receive, ReceiveTimeout, Select,
                      SelectResult, Send, Spawn, Trace, WaitUntil)
from .instrument import NULL_SINK, Sink, sink_overrides
from .process import (_FINISHED_STATES, Process, ProcessBody,
                      ProcessState)
from .tracing import EventKind, Tracer

#: Transport hook signature: given a committed pair, return message latency.
Transport = Callable[["Scheduler", board_mod.Commit], float]

#: Match filter signature: may a rendezvous between these two processes
#: commit right now?  Installed by fault-injecting transports to model
#: link partitions: a partitioned pair simply never matches, so senders
#: block (and, with timeouts, expire) until the link heals.
MatchFilter = Callable[[Process, Process], bool]


def _rng_crc(state: tuple) -> int:
    """CRC32 fingerprint of a ``random.Random`` state tuple.

    The Mersenne Twister word vector packs straight into 32-bit
    little-endian — orders of magnitude cheaper than repr'ing a 625-int
    tuple — with version and gauss-carry folded in on top.  Falls back to
    the repr of the whole tuple if the state is not the expected shape
    (a subclassed RNG, say), trading speed for the same determinism.
    """
    try:
        version, words, gauss = state
        crc = zlib.crc32(struct.pack(f"<{len(words)}I", *words))
    except (ValueError, TypeError, struct.error):
        return zlib.crc32(repr(state).encode("utf-8"))
    return zlib.crc32(repr((version, gauss)).encode("utf-8"), crc)


class RunResult:
    """Outcome of a scheduler run."""

    def __init__(self, scheduler: "Scheduler"):
        self.time = scheduler.now
        self.steps = scheduler.total_steps
        self.tracer = scheduler.tracer
        # Start from the snapshots of processes reaped mid-run (see
        # Scheduler.reap); live records override on a name collision.
        self.results: dict[Hashable, Any] = dict(scheduler._reaped_results)
        self.results.update({
            p.name: p.result for p in scheduler.processes.values()
            if p.state is ProcessState.DONE and not p.killed})
        self.failures: dict[Hashable, BaseException] = dict(
            scheduler._reaped_failures)
        self.failures.update({
            p.name: p.error for p in scheduler.processes.values()
            if p.state is ProcessState.FAILED})
        self.killed: list[Hashable] = list(scheduler._reaped_killed) + [
            p.name for p in scheduler.processes.values() if p.killed]

    @property
    def ok(self) -> bool:
        """True when no process failed."""
        return not self.failures

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RunResult time={self.time:g} steps={self.steps} "
                f"done={len(self.results)} failed={len(self.failures)}>")


class TimerHandle:
    """Cancellation handle for a scheduled timer.

    The handle reports back to its scheduler so the armed-timer count
    stays exact without scanning the heap, and so a cancellation storm
    can trigger heap compaction.  ``owner`` names the process whose death
    should withdraw the timer (``None`` for process-independent timers
    such as fault-plan events, which must fire regardless of crashes).
    """

    __slots__ = ("action", "cancelled", "owner", "_scheduler", "_in_heap")

    def __init__(self, action: Callable[[], None],
                 scheduler: "Scheduler | None" = None,
                 owner: Hashable | None = None):
        self.action = action
        self.cancelled = False
        self.owner = owner
        self._scheduler = scheduler
        self._in_heap = True

    def cancel(self) -> None:
        """Prevent the timer from firing (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._scheduler is not None and self._in_heap:
            self._scheduler._note_timer_cancelled(self)


class _Waiter:
    """A process blocked on a ``WaitUntil`` condition."""

    __slots__ = ("process", "predicate", "description")

    def __init__(self, process: Process, predicate: Callable[[], bool],
                 description: str):
        self.process = process
        self.predicate = predicate
        self.description = description


class Scheduler:
    """Deterministic cooperative scheduler with virtual time.

    Parameters
    ----------
    seed:
        Seed for the scheduler's RNG; fixes all nondeterministic choices.
    tracer:
        Optional shared :class:`Tracer`; a fresh one is created by default.
    max_steps:
        Upper bound on total process resumptions, to catch livelocks.
    fail_fast:
        When true (the default), an uncaught exception in any process
        aborts the run immediately with :class:`ProcessFailure`.
    transport:
        Optional latency hook applied to every committed rendezvous.
    sink:
        Optional instrumentation :class:`~repro.runtime.instrument.Sink`;
        defaults to the falsy :data:`~repro.runtime.instrument.NULL_SINK`,
        so every callback site is guarded by one truthiness check.
    board:
        Optional rendezvous board.  Defaults to the incremental
        :class:`~repro.runtime.board_index.IndexedBoard`; pass a
        :class:`~repro.runtime.board_oracle.OracleBoard` to match with
        the reference full scan (differential testing, debugging).
    """

    # Slot-based records: the scheduler is allocated once but *read* on
    # every hot-path operation, and slot loads skip the instance-dict
    # lookup.  Subclasses (the frozen benchmark baselines) may still add
    # ad-hoc attributes — without their own __slots__ they get a dict.
    __slots__ = (
        "seed", "rng", "tracer", "max_steps", "fail_fast", "transport",
        "match_filter", "match_deadline", "now", "total_steps",
        "processes", "alias_owner", "_ready", "_board", "_waiters",
        "_timers", "_timer_seq", "_armed_timers", "_cancelled_in_heap",
        "_process_timers", "_reaped_results", "_reaped_failures",
        "_reaped_killed", "_first_failure", "_kill_listeners",
        "_board_dirty", "commit_count", "_cadence_every", "_cadence_hook",
        "prof_clock", "_prof_timer_ops", "_prof_journal_ns", "_sink",
        "_sink_offer", "_sink_index", "_sink_commit", "_sink_decision",
        "_sink_phase", "_sink_settle",
    )

    def __init__(self, seed: int = 0, tracer: Tracer | None = None,
                 max_steps: int = 1_000_000, fail_fast: bool = True,
                 transport: Transport | None = None,
                 sink: Sink | None = None,
                 board: RendezvousBoard | None = None):
        self.seed = seed
        self.rng = random.Random(seed)
        self.tracer = tracer if tracer is not None else Tracer()
        self.sink = sink if sink is not None else NULL_SINK  # via property
        self.max_steps = max_steps
        self.fail_fast = fail_fast
        self.transport = transport
        self.match_filter: MatchFilter | None = None
        # Optional bound on how long a *vetoed* rendezvous may wait for the
        # match filter to relent (e.g. a partition to heal).  When set, the
        # first settle that sees a filtered-out candidate arms a timeout on
        # both parties' offer groups; a commit beforehand cancels it.
        self.match_deadline: float | None = None
        self.now: float = 0.0
        self.total_steps = 0
        self.processes: dict[Hashable, Process] = {}
        self.alias_owner: dict[Hashable, Process] = {}
        self._ready: deque[Process] = deque()
        self._board = board if board is not None else IndexedBoard()
        self._board.bind(self.alias_owner)
        self._waiters: dict[Hashable, _Waiter] = {}
        self._timers: list[tuple[float, int, TimerHandle]] = []
        self._timer_seq = 0
        # Exact armed/cancelled-in-heap counts, kept live by push, fire,
        # and TimerHandle.cancel so residue checks never scan the heap.
        self._armed_timers = 0
        self._cancelled_in_heap = 0
        # Armed timers owned by a process, withdrawn when it dies.
        self._process_timers: dict[Hashable, set[TimerHandle]] = {}
        # Snapshots of reaped (finished, dropped) process records.
        self._reaped_results: dict[Hashable, Any] = {}
        self._reaped_failures: dict[Hashable, BaseException] = {}
        self._reaped_killed: list[Hashable] = []
        self._first_failure: ProcessFailure | None = None
        self._kill_listeners: list[Callable[[Process], None]] = []
        # Set whenever an event that can change matchability happens
        # (post, withdraw, alias claim/release); cleared by ``_settle``.
        # Steps that leave it clear skip the settle entirely when no
        # waiter predicates are parked.
        self._board_dirty = True
        # Total committed rendezvous, kept live by _commit; the cadence
        # hook (see set_commit_cadence) fires every N-th commit without
        # any sink-dispatch cost on the other N-1.
        self.commit_count = 0
        self._cadence_every = 1
        self._cadence_hook: Callable[[], None] | None = None
        # Hot-path profiling (armed only while the installed sink
        # overrides on_phase/on_settle — see the sink setter).  The clock
        # is swappable so tests can install a deterministic tick counter;
        # the two accumulators carry timer-heap op counts and the current
        # commit's journal (cadence-hook) time out to the profiled settle.
        self.prof_clock: Callable[[], int] = perf_counter_ns
        self._prof_timer_ops = 0
        self._prof_journal_ns = 0

    def set_commit_cadence(self, every: int,
                           hook: Callable[[], None] | None) -> None:
        """Invoke ``hook()`` after every ``every``-th committed rendezvous.

        A single slot, deliberately cheaper than a :class:`Sink`: the
        scheduler pays two integer operations per commit instead of a
        Python method call, which is what lets the journal recorder keep
        its snapshot cadence while staying within its overhead budget.
        The hook fires right after the commit's trace event and sink
        callbacks, so anything it emits lands after the COMM frame —
        replay relies on that ordering being identical on both sides.
        Pass ``hook=None`` to clear.
        """
        if every < 1:
            raise RuntimeKernelError("commit cadence must be >= 1")
        if hook is not None and self._cadence_hook is not None \
                and hook is not self._cadence_hook:
            raise RuntimeKernelError(
                "a commit-cadence hook is already installed")
        self._cadence_every = every
        self._cadence_hook = hook

    @property
    def sink(self) -> Sink:
        """The installed instrumentation sink (``NULL_SINK`` when off)."""
        return self._sink

    @sink.setter
    def sink(self, sink: Sink | None) -> None:
        # Capability flags, recomputed on every install: hot-path call
        # sites only dispatch callbacks the sink's class actually
        # overrides, so a sink interested in commits alone (a journal
        # recorder, say) never pays per-offer no-op calls.  Class-level
        # detection: per-instance monkeypatched callbacks are not seen.
        sink = sink if sink is not None else NULL_SINK
        self._sink = sink
        armed = bool(sink)
        self._sink_offer = armed and sink_overrides(sink, "on_offer_posted")
        self._sink_index = armed and sink_overrides(sink, "on_index")
        self._sink_commit = armed and sink_overrides(sink, "on_commit")
        self._sink_decision = armed and sink_overrides(sink, "on_decision")
        self._sink_phase = armed and sink_overrides(sink, "on_phase")
        self._sink_settle = armed and sink_overrides(sink, "on_settle")

    # ------------------------------------------------------------------
    # Residue introspection (public: soak tests and supervisors use these)
    # ------------------------------------------------------------------

    @property
    def board(self) -> RendezvousBoard:
        """The installed rendezvous board (read-only introspection)."""
        return self._board

    @property
    def board_size(self) -> int:
        """Number of processes with pending rendezvous offers."""
        return len(self._board)

    @property
    def waiter_count(self) -> int:
        """Number of processes blocked on a ``WaitUntil`` condition."""
        return len(self._waiters)

    @property
    def pending_timer_count(self) -> int:
        """Number of armed (non-cancelled) timers (O(1), kept live)."""
        return self._armed_timers

    def state_digest(self) -> dict[str, Any]:
        """Deterministic fingerprint of the scheduler's resumable state.

        Everything a journal snapshot needs to assert that a replayed
        scheduler stands exactly where the original did: virtual time,
        step count, which processes hold board offers / waiters / armed
        timers, the alias registry keys, and a CRC of the RNG state (the
        full state tuple is large; the CRC detects divergence just as
        well).  Keys are rendered with ``repr`` and sorted so the digest
        is insertion-order independent and JSON-stable.

        Equivalent to ``digest_of(state_capture())``; callers on a hot
        path take the cheap capture now and render the digest later.
        """
        return self.digest_of(self.state_capture())

    def state_capture(self) -> tuple:
        """Cheap point-in-time copy of everything :meth:`state_digest` reads.

        Shallow key copies plus the RNG state tuple — tens of
        microseconds, vs the repr/sort/CRC rendering cost of the digest
        itself.  The journal recorder snapshots with this inside the run
        loop and renders via :meth:`digest_of` at the next durability
        point; both orders yield the identical digest because the capture
        is already decoupled from the live structures.
        """
        return (self.now, self.total_steps, list(self._board.groups),
                list(self._waiters), self._armed_timers,
                list(self.alias_owner), self.rng.getstate())

    @staticmethod
    def digest_of(capture: tuple) -> dict[str, Any]:
        """Render a :meth:`state_capture` into the digest mapping."""
        now, steps, board, waiters, timers, aliases, rng_state = capture
        return {
            "now": now,
            "steps": steps,
            "board": sorted(repr(name) for name in board),
            "waiters": sorted(repr(name) for name in waiters),
            "timers": timers,
            "aliases": sorted(repr(alias) for alias in aliases),
            "rng": _rng_crc(rng_state),
        }

    def blocked_only_on(self, aliases: Iterable[Hashable]) -> list[Hashable]:
        """Names of processes whose *every* pending offer targets ``aliases``.

        Such processes can never commit again if the named aliases are
        permanently dead — supervisors use this to find rendezvous that a
        crash has wedged.  Offers open to any partner (receive-from-anyone)
        disqualify a process, as do offers to other, live addresses.
        """
        dead = set(aliases)
        wedged: list[Hashable] = []
        for name, group in self._board.groups.items():
            if group.offers and all(offer.partner_alias in dead
                                    for offer in group.offers):
                wedged.append(name)
        return wedged

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------

    def spawn(self, name: Hashable, body: ProcessBody) -> Process:
        """Register a new process and make it runnable."""
        if name in self.processes and not self.processes[name].finished:
            raise RuntimeKernelError(f"process name {name!r} already in use")
        process = Process(name, body)
        self.processes[name] = process
        self._claim_alias(name, process)
        self._ready.append(process)
        self.tracer.emit(self.now, EventKind.SPAWN, name)
        return process

    def respawn(self, name: Hashable, body: ProcessBody) -> Process:
        """Re-register a finished process name with a fresh body.

        Restart policies use this to bring a crashed process back: the old
        record's outcome is snapshotted first (exactly as :meth:`reap` would
        have), so a later :class:`RunResult` still reports the kill/failure
        that triggered the restart.  Raises if the name is still running.
        """
        old = self.processes.get(name)
        if old is not None:
            if not old.finished:
                raise RuntimeKernelError(
                    f"cannot respawn {name!r}: process still running")
            if old.killed:
                self._reaped_killed.append(name)
            elif old.state is ProcessState.FAILED:
                self._reaped_failures[name] = old.error
            else:
                self._reaped_results[name] = old.result
            self._process_timers.pop(name, None)
            # Release any aliases the finished record still holds *before*
            # spawn re-claims the name.  Every normal finish path already
            # released them, but a stale extra alias (role address) left
            # behind by an exotic path would otherwise keep routing
            # rendezvous to the dead record — and claiming over it would
            # leave the registry inconsistent with ``old.aliases``.
            self._release_aliases(old)
            del self.processes[name]
        return self.spawn(name, body)

    def kill(self, name: Hashable) -> None:
        """Terminate a process immediately (fault injection).

        The process is marked done-with-kill; pending offers, waiters and
        aliases are cleaned up.  Kill listeners (see :meth:`on_kill`) then
        run — supervisors use them to apply a recovery policy; without one,
        partners block (and possibly deadlock, which is faithful to a
        crashed peer in a synchronous model).
        """
        process = self.processes.get(name)
        if process is None:
            raise UnknownProcessError(f"no process named {name!r}")
        if process.finished:
            return
        process.killed = True
        process.state = ProcessState.DONE
        self._board.withdraw(name)
        self._board_dirty = True
        self._waiters.pop(name, None)
        self._withdraw_process_timers(name)
        self._release_aliases(process)
        self.tracer.emit(self.now, EventKind.PROC_DONE, name, killed=True)
        for listener in list(self._kill_listeners):
            listener(process)

    def on_kill(self, listener: Callable[[Process], None]) -> None:
        """Register ``listener`` to be called after every :meth:`kill`."""
        self._kill_listeners.append(listener)

    def interrupt(self, name: Hashable, exc: BaseException) -> None:
        """Throw ``exc`` into a process at its current yield point.

        Whatever the process is blocked on is cancelled first: pending
        rendezvous offers are withdrawn (their expiry timers cancelled),
        condition waiters removed, and any outstanding ``Delay`` or
        in-transit resumption is invalidated.  The process resumes with
        ``exc`` raised inside it; supervisors use this to release
        survivors of an aborted performance.
        """
        process = self.processes.get(name)
        if process is None:
            raise UnknownProcessError(f"no process named {name!r}")
        if process.finished:
            return
        self._board.withdraw(name)
        self._board_dirty = True
        self._waiters.pop(name, None)
        self._withdraw_process_timers(name)
        self.tracer.emit(self.now, EventKind.INTERRUPT, name, error=repr(exc))
        self._throw(process, exc)

    def schedule_at(self, time: float, action: Callable[[], None]) -> "TimerHandle":
        """Run ``action()`` at virtual time ``time``.

        Returns a :class:`TimerHandle` whose ``cancel()`` removes the timer;
        cancelled timers neither fire nor hold the virtual clock back.
        """
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        return self._push_timer(time, action)

    def kill_at(self, time: float, name: Hashable) -> None:
        """Schedule a process crash at virtual time ``time``."""
        self.schedule_at(time, lambda: self.kill(name))

    def reap(self) -> int:
        """Drop finished process records; returns how many were dropped.

        Soak runs that spawn short-lived processes would otherwise grow
        ``processes`` without bound.  Each reaped record's outcome
        (result, failure, or kill) is snapshotted first, so a later
        :class:`RunResult` still reports it.  If a reaped name is later
        reused by :meth:`spawn`, the new process's outcome wins.
        """
        reaped = 0
        for name, process in list(self.processes.items()):
            if not process.finished:
                continue
            if process.killed:
                self._reaped_killed.append(name)
            elif process.state is ProcessState.FAILED:
                self._reaped_failures[name] = process.error
            else:
                self._reaped_results[name] = process.result
            self._process_timers.pop(name, None)
            del self.processes[name]
            reaped += 1
        self._board.compact()
        return reaped

    # ------------------------------------------------------------------
    # Alias registry
    # ------------------------------------------------------------------

    def _claim_alias(self, alias: Hashable, process: Process) -> None:
        current = self.alias_owner.get(alias)
        if current is not None and not current.finished and current is not process:
            raise RuntimeKernelError(
                f"alias {alias!r} already owned by {current.name!r}")
        if current is not None and current is not process:
            # Overwriting a finished owner's claim: release it properly
            # first so the board index drops pairs routed through the old
            # owner and ``current.aliases`` stays consistent.
            self._release_alias(alias, current)
        self.alias_owner[alias] = process
        process.aliases.add(alias)
        self._board.on_alias_claimed(alias, process)
        self._board_dirty = True

    def _release_alias(self, alias: Hashable, process: Process) -> None:
        if self.alias_owner.get(alias) is process:
            del self.alias_owner[alias]
            self._board.on_alias_released(alias, process)
            self._board_dirty = True
        process.aliases.discard(alias)

    def _release_aliases(self, process: Process) -> None:
        for alias in list(process.aliases):
            self._release_alias(alias, process)

    def add_alias(self, process_name: Hashable, alias: Hashable) -> None:
        """Register an extra address for a process (scheduler-side API)."""
        process = self.processes.get(process_name)
        if process is None:
            raise UnknownProcessError(f"no process named {process_name!r}")
        self._claim_alias(alias, process)

    def drop_alias(self, process_name: Hashable, alias: Hashable) -> None:
        """Remove an extra address from a process (scheduler-side API)."""
        process = self.processes.get(process_name)
        if process is None:
            raise UnknownProcessError(f"no process named {process_name!r}")
        self._release_alias(alias, process)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self, until: float | None = None) -> RunResult:
        """Run until quiescence, deadlock, failure, or virtual time ``until``.

        Returns a :class:`RunResult`.  Raises :class:`DeadlockError` when
        blocked processes remain but nothing can ever wake them, and
        :class:`ProcessFailure` (with ``fail_fast``) on the first uncaught
        process exception.
        """
        if not self._sink_phase:
            return self._run(until)
        # Profiled entry: the whole run is timed so phase shares have a
        # denominator; "run" is emitted last (even on deadlock/failure),
        # which is what report builders key off.
        clk = self.prof_clock
        started = clk()
        try:
            return self._run(until)
        finally:
            self._sink.on_phase("run", clk() - started)

    def _run(self, until: float | None = None) -> RunResult:
        while True:
            if self._first_failure is not None and self.fail_fast:
                raise self._first_failure
            if not self._ready:
                self._prune_timers()
                if not self._timers:
                    if self._board.groups or self._waiters:
                        # Settle once before declaring deadlock: a skipped
                        # settle is only ever a no-op for *board* events,
                        # but out-of-band state (say, a match filter healed
                        # from inside a process body) can still unblock a
                        # pending pair.
                        self._settle()
                        if self._ready:
                            continue
                        raise DeadlockError(self._blocked_summary())
                    break
                next_time = self._timers[0][0]
                if until is not None and next_time > until:
                    self.now = until
                    break
                # Timer actions are arbitrary callbacks (heals, kills,
                # fault injections), so a clock advance always settles.
                self._advance_clock(next_time)
                self._settle()
                continue
            process = self._ready.popleft()
            if process.state in _FINISHED_STATES:  # inlined Process.finished
                continue
            if self._sink_phase:
                clk = self.prof_clock
                step_start = clk()
                self._step(process)
                self._sink.on_phase("dispatch", clk() - step_start)
            else:
                self._step(process)
            # Dirty-set settling: a step that neither posted nor withdrew
            # offers nor moved an alias cannot create a candidate pair,
            # and with no waiters parked there is nothing to poll.  Even
            # a dirtying step is skippable when the board can prove its
            # candidate set is empty (needs_settle; the full-scan board
            # always claims it needs one).
            if self._waiters or (self._board_dirty
                                 and self._board.needs_settle):
                self._settle()
        return RunResult(self)

    def _blocked_summary(self) -> dict[Hashable, str]:
        summary: dict[Hashable, str] = {}
        for name, group in self._board.groups.items():
            summary[name] = group.describe()
        for name, waiter in self._waiters.items():
            summary[name] = f"waiting until {waiter.description}"
        return summary

    def _prune_timers(self) -> None:
        while self._timers and self._timers[0][2].cancelled:
            _, _, handle = heapq.heappop(self._timers)
            handle._in_heap = False
            self._cancelled_in_heap -= 1
            if self._sink_settle:
                self._prof_timer_ops += 1

    def _advance_clock(self, to_time: float) -> None:
        if self._sink_phase:
            clk = self.prof_clock
            advance_start = clk()
            try:
                self._advance_clock_inner(to_time)
            finally:
                self._sink.on_phase("timers", clk() - advance_start)
            return
        self._advance_clock_inner(to_time)

    def _advance_clock_inner(self, to_time: float) -> None:
        self.now = to_time
        count_ops = self._sink_settle
        while self._timers and self._timers[0][0] <= self.now:
            _, seq, handle = heapq.heappop(self._timers)
            handle._in_heap = False
            if count_ops:
                self._prof_timer_ops += 1
            if handle.cancelled:
                self._cancelled_in_heap -= 1
                continue
            self._armed_timers -= 1
            self._unregister_timer(handle)
            if self._sink_decision:
                self._sink.on_decision(self.now, "timer", handle.owner, seq)
            handle.action()
        self._prune_timers()

    def _push_timer(self, time: float, action: Callable[[], None],
                    owner: Hashable | None = None) -> "TimerHandle":
        self._timer_seq += 1
        handle = TimerHandle(action, scheduler=self, owner=owner)
        heapq.heappush(self._timers, (time, self._timer_seq, handle))
        self._armed_timers += 1
        if self._sink_settle:
            self._prof_timer_ops += 1
        if owner is not None:
            self._process_timers.setdefault(owner, set()).add(handle)
        return handle

    def _unregister_timer(self, handle: "TimerHandle") -> None:
        if handle.owner is None:
            return
        bucket = self._process_timers.get(handle.owner)
        if bucket is not None:
            bucket.discard(handle)
            if not bucket:
                del self._process_timers[handle.owner]

    def _note_timer_cancelled(self, handle: "TimerHandle") -> None:
        """Accounting callback from :meth:`TimerHandle.cancel`."""
        self._armed_timers -= 1
        self._cancelled_in_heap += 1
        self._unregister_timer(handle)
        # Compact once dead entries dominate, so long runs that cancel
        # most of their timers (chaos soaks, timeout-heavy workloads)
        # don't drag an ever-growing heap behind them.  Rebuilding keeps
        # the (time, seq) keys, so pop order — and thus determinism — is
        # unaffected.
        if len(self._timers) > 64 and \
                self._cancelled_in_heap * 2 > len(self._timers):
            live = []
            for entry in self._timers:
                if entry[2].cancelled:
                    entry[2]._in_heap = False
                else:
                    live.append(entry)
            self._timers = live
            heapq.heapify(self._timers)
            self._cancelled_in_heap = 0

    def _withdraw_process_timers(self, name: Hashable) -> None:
        """Cancel every armed timer owned by ``name`` (it died).

        Without this, a killed process's ``Delay`` / in-transit timers
        stay in the heap and keep advancing the virtual clock just to
        fire epoch-guarded no-ops, so quiescence lands late.
        """
        bucket = self._process_timers.pop(name, None)
        if bucket is None:
            return
        for handle in bucket:
            handle.owner = None  # bucket already popped
            handle.cancel()

    def _make_ready(self, process: Process, value: Any = None) -> None:
        if process.state in _FINISHED_STATES:  # inlined Process.finished
            return
        process.set_resume(value)
        process.state = ProcessState.READY
        self._ready.append(process)

    def _make_ready_if(self, process: Process, epoch: int,
                       value: Any = None) -> None:
        """Timer-safe resume: a no-op if the process was resumed since the
        timer was armed (its epoch moved on) or has finished."""
        if process.finished or process.epoch != epoch:
            return
        self._make_ready(process, value)

    def _throw(self, process: Process, exc: BaseException) -> None:
        """Schedule ``exc`` to be raised inside ``process`` and run it."""
        if process.finished:
            return
        already_queued = process.state is ProcessState.READY
        process.set_resume_exception(exc)
        if not already_queued:
            process.state = ProcessState.READY
            self._ready.append(process)

    # ------------------------------------------------------------------
    # Stepping and effect handling
    # ------------------------------------------------------------------

    def _step(self, process: Process) -> None:
        self.total_steps += 1
        if self.total_steps > self.max_steps:
            raise StepLimitExceeded(
                f"exceeded {self.max_steps} steps; livelock suspected")
        try:
            effect = process.advance()
        except StopIteration as stop:
            process.state = ProcessState.DONE
            process.result = stop.value
            self._withdraw_process_timers(process.name)
            self._release_aliases(process)
            self.tracer.emit(self.now, EventKind.PROC_DONE, process.name)
            return
        except BaseException as exc:  # noqa: BLE001 - report any failure
            process.state = ProcessState.FAILED
            process.error = exc
            self._withdraw_process_timers(process.name)
            self._release_aliases(process)
            self.tracer.emit(self.now, EventKind.PROC_FAIL, process.name,
                             error=repr(exc))
            failure = ProcessFailure(process.name, exc)
            if self._first_failure is None:
                self._first_failure = failure
            return
        try:
            self._handle_effect(process, effect)
        except (InvalidEffectError, TypeError, ValueError) as exc:
            # A malformed yield is the yielding process's bug: record it as
            # that process's failure rather than crashing the scheduler.
            process.state = ProcessState.FAILED
            process.error = exc
            self._board.withdraw(process.name)
            self._board_dirty = True
            self._withdraw_process_timers(process.name)
            self._release_aliases(process)
            self.tracer.emit(self.now, EventKind.PROC_FAIL, process.name,
                             error=repr(exc))
            if self._first_failure is None:
                self._first_failure = ProcessFailure(process.name, exc)

    def _post_group(self, process: Process, group: OfferGroup,
                    timeout: float | None = None,
                    on_expiry: Callable[[Process], None] | None = None) -> None:
        """Block ``process`` on its offers, optionally with an expiry timer.

        ``on_expiry`` runs only if the offers are still on the board when
        the timer fires; a commit (or interrupt) beforehand withdraws the
        group, which cancels the timer.
        """
        process.state = ProcessState.BLOCKED
        # Adopt the board's group: the indexed board's re-post cache may
        # return a resumed equivalent group instead of ``group``, and the
        # blocked-reason closure and expiry timer below must reference
        # the object actually on the board (the stale-timer guard
        # compares by identity).
        group = self._board.post(group)
        process._blocked_reason = group.describe  # rendered lazily on read
        self._board_dirty = True
        if self._sink_offer:
            self._sink.on_offer_posted(self.now, process.name)
        if timeout is None:
            return

        def expire() -> None:
            if self._board.groups.get(process.name) is not group:
                return  # already committed; stale timer
            self._board.withdraw(process.name)
            self._board_dirty = True
            self.tracer.emit(self.now, EventKind.TIMEOUT, process.name,
                             waiting=group.describe())
            on_expiry(process)

        group.expiry = self._push_timer(self.now + timeout, expire,
                                        owner=process.name)

    def _handle_effect(self, process: Process, effect: Any) -> None:
        if isinstance(effect, (Send, Receive)):
            self._post_group(process, make_group(process, [effect], plain=True))
        elif isinstance(effect, ReceiveTimeout):
            receive = Receive(effect.frm, tag=effect.tag,
                              with_sender=effect.with_sender)
            self._post_group(
                process, make_group(process, [receive], plain=True),
                timeout=effect.timeout,
                on_expiry=lambda p: self._make_ready(p, TIMED_OUT))
        elif isinstance(effect, Deadline):
            inner = effect.effect
            if isinstance(inner, (Send, Receive)):
                group = make_group(process, [inner], plain=True)
            elif isinstance(inner, Select):
                group = make_group(process, inner.branches, plain=False)
            else:
                raise InvalidEffectError(
                    f"Deadline wraps Send/Receive/Select, got {inner!r}")
            deadline = self.now + effect.timeout
            self._post_group(
                process, group, timeout=effect.timeout,
                on_expiry=lambda p, t=deadline, g=group: self._throw(
                    p, TimeoutError(p.name, t, g.describe())))
        elif isinstance(effect, Select):
            group = make_group(process, effect.branches, plain=False)
            if effect.immediate:
                if not self._matchable(group):
                    self._make_ready(process, board_mod.else_result())
                    return
            on_expiry = None
            if effect.timeout is not None:
                on_expiry = lambda p: self._make_ready(  # noqa: E731
                    p, SelectResult(index=TIMED_OUT_BRANCH))
            self._post_group(process, group, timeout=effect.timeout,
                             on_expiry=on_expiry)
        elif isinstance(effect, Delay):
            process.state = ProcessState.BLOCKED
            process.blocked_reason = f"delay({effect.duration})"
            self.tracer.emit(self.now, EventKind.DELAY, process.name,
                             duration=effect.duration)
            self._push_timer(
                self.now + effect.duration,
                lambda p=process, e=process.epoch: self._make_ready_if(p, e),
                owner=process.name)
        elif isinstance(effect, WaitUntil):
            if effect.predicate():
                self._make_ready(process)
            else:
                process.state = ProcessState.BLOCKED
                process.blocked_reason = f"until {effect.description}"
                self._waiters[process.name] = _Waiter(
                    process, effect.predicate, effect.description)
        elif isinstance(effect, GetTime):
            self._make_ready(process, self.now)
        elif isinstance(effect, GetName):
            self._make_ready(process, process.name)
        elif isinstance(effect, Choice):
            picked = self.rng.choice(effect.options)
            if self._sink_decision:
                self._sink.on_decision(self.now, "choice", process.name,
                                      picked)
            self._make_ready(process, picked)
        elif isinstance(effect, QueryProcesses):
            statuses = {}
            for name in effect.names:
                peer = self.processes.get(name)
                statuses[name] = peer is None or peer.finished
            self._make_ready(process, statuses)
        elif isinstance(effect, Trace):
            self.tracer.emit(self.now, EventKind.USER, process.name,
                             user_kind=effect.kind, **effect.details)
            self._make_ready(process)
        elif isinstance(effect, Spawn):
            self.spawn(effect.name, effect.body)
            self._make_ready(process, effect.name)
        elif isinstance(effect, AddAlias):
            self._claim_alias(effect.alias, process)
            self._make_ready(process)
        elif isinstance(effect, DropAlias):
            self._release_alias(effect.alias, process)
            self._make_ready(process)
        elif isinstance(effect, Effect):
            raise InvalidEffectError(f"unhandled effect type: {effect!r}")
        else:
            raise InvalidEffectError(
                f"process {process.name!r} yielded a non-effect: {effect!r}")

    # ------------------------------------------------------------------
    # Settling: rendezvous matching and condition wake-ups
    # ------------------------------------------------------------------

    def _filter_commits(self, commits: list[board_mod.Commit]
                        ) -> list[board_mod.Commit]:
        if self.match_filter is None:
            return commits
        allow = self.match_filter
        return [c for c in commits if allow(c.sender, c.receiver)]

    def _matchable(self, group: OfferGroup) -> bool:
        """Could ``group`` commit right now (respecting the match filter)?"""
        return bool(self._filter_commits(
            self._board.candidates_for(group, self.alias_owner)))

    def _settle(self) -> None:
        """Commit matchable rendezvous and wake satisfied waiters to fixpoint.

        With the indexed board, each candidate query drains the live pair
        set (O(pairs log pairs)) instead of re-scanning the whole board,
        so a settle round costs O(what this step changed).  The caller
        additionally skips the settle outright after steps that left
        ``_board_dirty`` clear (nothing posted, withdrawn, or re-aliased)
        when no waiters are parked — such a settle is provably a no-op,
        since the previous one already drained the candidate set.  Waiter
        predicates are polled once per settle (the triggering step or
        timer may have changed what they observe) and re-polled only
        while rounds keep changing state — a commit or a wake — since
        nothing else can newly satisfy them; with no waiters parked the
        poll pass is skipped outright.
        """
        if self._sink_phase:
            return self._settle_profiled()
        self._board_dirty = False
        board = self._board
        if self.match_filter is None and board.fast_pick:
            # Fast drain: the indexed board answers emptiness in O(1) and
            # draws the committed pair straight from its maintained order
            # without materializing (or re-sorting) a candidate list.
            # ``pick`` consumes the identical RNG draw ``rng.choice`` on
            # the full candidate list would, so the decision sequence —
            # and therefore the trace — is unchanged.
            rng = self.rng
            pick = board.pick
            waiters = self._waiters
            while True:
                while (commit := pick(rng)) is not None:
                    self._commit(commit)
                # Commits only enqueue ready processes — no user code runs
                # inside the drain — so with no waiters parked the board
                # cannot refill and one drain pass is the whole fixpoint.
                # (An empty pick consumes no RNG, so looping back after
                # waiter wakes stays trace-identical to the legacy rounds.)
                if not waiters:
                    return
                changed = False
                for name in list(waiters):
                    waiter = waiters.get(name)
                    if waiter is None:
                        continue
                    if waiter.predicate():
                        del waiters[name]
                        self._make_ready(waiter.process)
                        changed = True
                if not changed:
                    return
        board_candidates = board.candidates
        owner = self.alias_owner
        changed = True
        while changed:
            changed = False
            while True:
                candidates = board_candidates(owner)
                if candidates:
                    allow = self.match_filter
                    if allow is not None:
                        passed = []
                        for c in candidates:
                            if allow(c.sender, c.receiver):
                                passed.append(c)
                            elif self.match_deadline is not None:
                                self._arm_match_deadline(c)
                        candidates = passed
                if not candidates:
                    break
                commit = self.rng.choice(candidates)
                self._commit(commit)
                changed = True
            if self._waiters:
                for name in list(self._waiters):
                    waiter = self._waiters.get(name)
                    if waiter is None:
                        continue
                    if waiter.predicate():
                        del self._waiters[name]
                        self._make_ready(waiter.process)
                        changed = True

    def _settle_profiled(self) -> None:
        """The settle loop with phase timers and work counters woven in.

        Identical decision sequence to :meth:`_settle` — same candidate
        queries, same RNG draws, same commit order — so a profiled run's
        trace is byte-identical to an unprofiled one.  Phase accounting:
        ``match`` covers candidate queries plus match-filter passes,
        ``commit`` the rendezvous commits (minus cadence-hook time, split
        out as ``journal``), and ``settle`` is this pass's residual —
        loop bookkeeping, RNG draws, and waiter-predicate polling.

        On the indexed board's fast-pick path, ``match`` instead covers
        the O(1) emptiness check plus the pick (which subsumes the RNG
        draw the legacy path books under ``settle``) — the pick *is* the
        candidate query there, so the taxonomy still slices at the same
        semantic joints: deciding what can commit vs performing it.
        """
        clk = self.prof_clock
        settle_start = clk()
        self._prof_journal_ns = 0
        match_ns = 0
        commit_ns = 0
        commits = rounds = queries = candidates_seen = waiters_polled = 0
        pairs_peak = 0
        self._board_dirty = False
        board = self._board
        if self.match_filter is None and board.fast_pick:
            rng = self.rng
            pick = board.pick
            waiters = self._waiters
            draining = True
            while draining:
                draining = False
                rounds += 1
                while True:
                    mark = clk()
                    count = board.candidate_count
                    commit = pick(rng) if count else None
                    match_ns += clk() - mark
                    queries += 1
                    candidates_seen += count
                    if count > pairs_peak:
                        pairs_peak = count
                    if commit is None:
                        break
                    mark = clk()
                    self._commit(commit)
                    commit_ns += clk() - mark
                    commits += 1
                if not waiters:
                    break
                for name in list(waiters):
                    waiter = waiters.get(name)
                    if waiter is None:
                        continue
                    waiters_polled += 1
                    if waiter.predicate():
                        del waiters[name]
                        self._make_ready(waiter.process)
                        draining = True
            sink = self._sink
            journal_ns = self._prof_journal_ns
            sink.on_phase("match", match_ns)
            sink.on_phase("commit", commit_ns - journal_ns)
            if journal_ns:
                sink.on_phase("journal", journal_ns)
            residual = clk() - settle_start - match_ns - commit_ns
            sink.on_phase("settle", residual if residual > 0 else 0)
            if self._sink_settle:
                sink.on_settle(self.now, commits, rounds, queries,
                               candidates_seen, waiters_polled,
                               pairs_peak, self._prof_timer_ops)
            return
        board_candidates = board.candidates
        owner = self.alias_owner
        changed = True
        while changed:
            changed = False
            rounds += 1
            while True:
                mark = clk()
                candidates = board_candidates(owner)
                if candidates:
                    if len(candidates) > pairs_peak:
                        pairs_peak = len(candidates)
                    allow = self.match_filter
                    if allow is not None:
                        passed = []
                        for c in candidates:
                            if allow(c.sender, c.receiver):
                                passed.append(c)
                            elif self.match_deadline is not None:
                                self._arm_match_deadline(c)
                        candidates = passed
                match_ns += clk() - mark
                queries += 1
                candidates_seen += len(candidates)
                if not candidates:
                    break
                commit = self.rng.choice(candidates)
                mark = clk()
                self._commit(commit)
                commit_ns += clk() - mark
                commits += 1
                changed = True
            if self._waiters:
                for name in list(self._waiters):
                    waiter = self._waiters.get(name)
                    if waiter is None:
                        continue
                    waiters_polled += 1
                    if waiter.predicate():
                        del self._waiters[name]
                        self._make_ready(waiter.process)
                        changed = True
        sink = self._sink
        journal_ns = self._prof_journal_ns
        sink.on_phase("match", match_ns)
        sink.on_phase("commit", commit_ns - journal_ns)
        if journal_ns:
            sink.on_phase("journal", journal_ns)
        residual = clk() - settle_start - match_ns - commit_ns
        sink.on_phase("settle", residual if residual > 0 else 0)
        if self._sink_settle:
            sink.on_settle(self.now, commits, rounds, queries,
                           candidates_seen, waiters_polled,
                           pairs_peak, self._prof_timer_ops)

    def _arm_match_deadline(self, commit: board_mod.Commit) -> None:
        """Bound a filter-vetoed candidate pair's wait by ``match_deadline``.

        Arms an expiry timer on each party's offer group (idempotently: a
        group that already carries an expiry — from a select timeout, a
        ``Deadline``, or an earlier veto — keeps it).  If the pair commits
        before the timer fires, the withdraw cancels it; otherwise the
        party's offers are withdrawn and a :class:`TimeoutError` is thrown
        in, exactly like an expired ``Deadline``.
        """
        deadline = self.now + self.match_deadline
        for offer in (commit.send, commit.recv):
            group = offer.group
            if group.expiry is not None:
                continue
            process = group.process

            def expire(p=process, g=group, t=deadline) -> None:
                if self._board.groups.get(p.name) is not g:
                    return  # already committed; stale timer
                self._board.withdraw(p.name)
                self._board_dirty = True
                self.tracer.emit(self.now, EventKind.TIMEOUT, p.name,
                                 waiting=g.describe())
                self._throw(p, TimeoutError(p.name, t, g.describe()))

            group.expiry = self._push_timer(deadline, expire,
                                            owner=process.name)

    def _commit(self, commit: board_mod.Commit) -> None:
        send = commit.send
        recv = commit.recv
        sender = send.group.process
        receiver = recv.group.process
        self._board.remove_parties(commit)
        if send.group.plain and recv.group.plain and not recv.with_sender:
            # Fast path for the overwhelmingly common case — a bare
            # send/receive pair — matching resume_values() exactly.
            sender_result: Any = None
            receiver_result: Any = send.value
        else:
            sender_result, receiver_result = board_mod.resume_values(commit)
        sender_identity = (send.as_alias if send.as_alias is not None
                           else sender.name)
        # The transport runs before the COMM event so a delivery failure
        # leaves no phantom "communication happened" record; on success the
        # trace content is unchanged (the transport only returns a latency).
        if self.transport is not None:
            try:
                delay = self.transport(self, commit)
            except DeliveryFailed as failure:
                self.tracer.emit(
                    self.now, EventKind.FAULT, sender.name,
                    fault="delivery_failed", target=receiver.name,
                    value=failure.attempts, applied=True)
                self._throw(sender, failure)
                self._throw(receiver, failure)
                return
        else:
            delay = 0.0
        self.tracer.emit(
            self.now, EventKind.COMM, sender.name,
            receiver=receiver.name, to=send.partner_alias,
            sender_alias=sender_identity, tag=send.tag,
            value=send.value)
        if self._sink_commit:
            self._sink.on_commit(self.now, sender.name, receiver.name,
                                 len(self._board), len(self._waiters))
        if self._sink_index:
            board = self._board
            self._sink.on_index(self.now, board.index_size,
                                board.dirty_events, board.cache_hits,
                                board.swept_pairs)
        self.commit_count += 1
        if (self._cadence_hook is not None
                and self.commit_count % self._cadence_every == 0):
            if self._sink_phase:
                clk = self.prof_clock
                hook_start = clk()
                self._cadence_hook()
                self._prof_journal_ns += clk() - hook_start
            else:
                self._cadence_hook()
        if delay > 0:
            self._push_timer(
                self.now + delay,
                lambda p=sender, e=sender.epoch,
                v=sender_result: self._make_ready_if(p, e, v),
                owner=sender.name)
            self._push_timer(
                self.now + delay,
                lambda p=receiver, e=receiver.epoch,
                v=receiver_result: self._make_ready_if(p, e, v),
                owner=receiver.name)
            sender.blocked_reason = "message in transit"
            receiver.blocked_reason = "message in transit"
        else:
            self._make_ready(sender, sender_result)
            self._make_ready(receiver, receiver_result)


def run_processes(bodies: Mapping[Hashable, ProcessBody] |
                  Iterable[tuple[Hashable, ProcessBody]],
                  seed: int = 0, max_steps: int = 1_000_000,
                  transport: Transport | None = None,
                  tracer: Tracer | None = None) -> RunResult:
    """Convenience entry point: spawn ``bodies`` and run to completion.

    ``bodies`` maps process names to *instantiated* generators.  Returns the
    :class:`RunResult`; raises on deadlock or process failure.
    """
    scheduler = Scheduler(seed=seed, max_steps=max_steps,
                          transport=transport, tracer=tracer)
    items = bodies.items() if isinstance(bodies, Mapping) else bodies
    for name, body in items:
        scheduler.spawn(name, body)
    return scheduler.run()
