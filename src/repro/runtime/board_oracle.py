"""The full-scan rendezvous matcher, kept as a reference oracle.

The production scheduler matches rendezvous with the incremental
:class:`~repro.runtime.board_index.IndexedBoard`.  This module pins the
original full-scan matcher under a stable name so it can serve as a
*differential oracle*: the full scan re-derives the candidate set from
first principles on every call, so any disagreement — in the pair set,
its order, or therefore in a seeded run's trace — is a bug in the index
maintenance, not in the oracle.

Run any workload under both matchers with
``Scheduler(seed=s, board=OracleBoard())`` versus the default scheduler
and compare formatted traces; they must be byte-identical.  The
randomized property test in ``tests/runtime/test_board_oracle.py`` does
exactly that across mixed send/receive/select/timeout/partition
workloads and many seeds.
"""

from __future__ import annotations

from .board import RendezvousBoard


class OracleBoard(RendezvousBoard):
    """Reference full-scan matcher (see module docstring).

    Identical to :class:`~repro.runtime.board.RendezvousBoard`; the
    subclass exists so traces and reprs name the oracle explicitly.
    """


__all__ = ["OracleBoard"]
