"""The rendezvous board: pending communication offers and their matching.

Synchronous communication is implemented as a matching market.  A blocked
process contributes an *offer group* containing one offer per enabled
branch (a plain send or receive is a group of one).  The board repeatedly
looks for a send offer and a receive offer that agree on addressing and tag,
commits one such pair (chosen by the scheduler's seeded RNG, which is where
CSP's nondeterministic choice lives), and removes *all* offers of both
processes involved — a process commits to at most one branch of a select.

Offers address partners through *aliases*.  An offer to an alias that no
live process currently owns simply stays pending; this directly implements
the paper's immediate-initiation rule that "a role is delayed only if it
attempts to communicate with an unfilled role": the role address becomes
owned the moment a process enrolls, and matching is retried.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Hashable, Iterable, TYPE_CHECKING

from .effects import (ELSE_BRANCH, Receive, ReceivedMessage, Send,
                      SelectResult)

if TYPE_CHECKING:  # pragma: no cover
    from .process import Process


@dataclasses.dataclass(slots=True, eq=False)
class Offer:
    """One enabled communication branch of a blocked process.

    Offers compare (and hash) by identity: the indexed board files the
    same offer object under several buckets, and two textually identical
    offers from different processes must never collide.
    """

    group: "OfferGroup"
    index: int                       # branch index within the select
    is_send: bool
    partner_alias: Hashable | None   # Send.to, or Receive.frm (may be None)
    tag: Hashable
    value: Any = None                # payload for sends
    with_sender: bool = False        # receive wants (value, sender)
    as_alias: Hashable | None = None # identity the sender presents


@dataclasses.dataclass(slots=True, eq=False)
class OfferGroup:
    """All offers of one blocked process, plus how to build its result."""

    process: "Process"
    offers: list[Offer]
    plain: bool                      # a bare Send/Receive, not a Select
    # Timer that expires this group (Deadline / ReceiveTimeout / Select
    # timeout); cancelled automatically when the group leaves the board.
    expiry: Any = None
    # Monotonic post-order stamp, assigned by the board at ``post`` time.
    # Candidate ordering (and therefore which pair the seeded RNG picks)
    # is defined by it: groups posted earlier come first, exactly like
    # insertion-ordered iteration over the full-scan board's group dict.
    seq: int = 0
    # Whether the group is currently on a board.  The indexed board's
    # withdrawn-group cache keeps pairs referencing suspended groups
    # resident; this flag is how visibility is derived per pair.
    posted: bool = False
    # Cache-validity stamp at suspension time, written by the indexed
    # board's withdraw (a slot here instead of a tuple in the cache dict
    # keeps the per-rendezvous suspension bookkeeping allocation-free);
    # -1 marks an entry force-invalidated by an alias claim/release.
    cache_gen: int = 0

    def describe(self) -> str:
        """Human-readable account of what the process is waiting for."""
        parts = []
        for offer in self.offers:
            if offer.is_send:
                parts.append(f"send to {offer.partner_alias!r}")
            elif offer.partner_alias is None:
                parts.append("receive from anyone")
            else:
                parts.append(f"receive from {offer.partner_alias!r}")
        return " | ".join(parts) or "empty select"


def make_group(process: "Process", branches: Iterable[Send | Receive],
               plain: bool, sender_alias: Hashable | None = None) -> OfferGroup:
    """Build an :class:`OfferGroup` from effect branches.

    ``sender_alias`` overrides the identity presented by send branches
    (used by role contexts so partners observe role addresses, not process
    names).
    """
    group = OfferGroup(process, [], plain)
    append = group.offers.append
    for index, branch in enumerate(branches):
        # Positional Offer(...) calls: this runs for every blocked step,
        # so skip the keyword-binding overhead.  Field order is
        # (group, index, is_send, partner_alias, tag, value, with_sender,
        # as_alias) — keep in sync with the dataclass above.
        if isinstance(branch, Send):
            append(Offer(group, index, True, branch.to, branch.tag,
                         branch.value, False,
                         branch.as_alias if branch.as_alias is not None
                         else sender_alias))
        elif isinstance(branch, Receive):
            append(Offer(group, index, False, branch.frm, branch.tag,
                         None, branch.with_sender, None))
        else:
            raise TypeError(f"select branch must be Send or Receive, got {branch!r}")
    return group


@dataclasses.dataclass(slots=True, eq=False)
class Commit:
    """A matched send/receive pair, ready to be performed.

    Treat as immutable.  Not a frozen dataclass: one is allocated per
    candidate pair on the matching hot path, and ``frozen=True`` triples
    construction cost; ``eq=False`` keeps identity comparison/hashing.
    """

    send: Offer
    recv: Offer

    @property
    def sender(self) -> "Process":
        """The process whose send offer matched."""
        return self.send.group.process

    @property
    def receiver(self) -> "Process":
        """The process whose receive offer matched."""
        return self.recv.group.process


class RendezvousBoard:
    """Holds pending offer groups and finds matching pairs by full scan.

    The board does not own the alias registry; the scheduler passes a
    mapping from alias to owning process at matching time, because alias
    ownership changes as roles are filled and vacated.

    This class is the *reference* matcher: :meth:`candidates` re-derives
    every matchable pair from scratch, so its output is trivially correct
    but costs O(groups × offers × peer offers) per call.  The production
    scheduler uses :class:`repro.runtime.board_index.IndexedBoard`, which
    maintains the same pair set incrementally; this full-scan board is
    kept (re-exported as :mod:`repro.runtime.board_oracle`) as the
    differential oracle the indexed board is tested against.

    Subclass hook protocol (all no-ops here): the scheduler calls
    :meth:`bind` once with its live alias-owner mapping, and
    :meth:`on_alias_claimed` / :meth:`on_alias_released` after every
    ownership change, because alias moves are exactly the non-board
    events that can change matchability.
    """

    #: Whether the scheduler may drain via ``candidate_count``/``pick``
    #: instead of materializing :meth:`candidates` (indexed board only).
    fast_pick = False

    def __init__(self) -> None:
        self._groups: dict[Hashable, OfferGroup] = {}
        self._post_seq = 0

    def __len__(self) -> int:
        return len(self._groups)

    def __contains__(self, process_name: Hashable) -> bool:
        return process_name in self._groups

    @property
    def groups(self) -> dict[Hashable, OfferGroup]:
        """Pending offer groups, keyed by blocked process name."""
        return self._groups

    def post(self, group: OfferGroup) -> OfferGroup:
        """Register a blocked process's offers.

        Returns the group actually on the board.  That is ``group`` here,
        but the indexed board's re-post cache may adopt an equivalent
        previously-suspended group instead — callers must use the returned
        object for anything later compared by identity (expiry timers,
        withdrawal checks).
        """
        name = group.process.name
        if name in self._groups:
            raise RuntimeError(f"process {name!r} already has pending offers")
        self._post_seq += 1
        group.seq = self._post_seq
        group.posted = True
        self._groups[name] = group
        return group

    def withdraw(self, process_name: Hashable) -> OfferGroup | None:
        """Remove and return the offers of ``process_name``, if any.

        Any expiry timer attached to the group is cancelled, so a timeout
        can never fire for an offer that already left the board.
        """
        group = self._groups.pop(process_name, None)
        if group is not None:
            group.posted = False
            if group.expiry is not None:
                group.expiry.cancel()
        return group

    def _matches(self, send: Offer, recv: Offer,
                 owner: dict[Hashable, "Process"]) -> bool:
        sender = send.group.process
        receiver = recv.group.process
        if sender is receiver:
            return False
        target = owner.get(send.partner_alias)
        if target is not receiver:
            return False
        if recv.partner_alias is not None:
            source = owner.get(recv.partner_alias)
            if source is not sender:
                return False
        return send.tag == recv.tag

    def candidates(self, owner: dict[Hashable, "Process"]) -> list[Commit]:
        """All currently matchable send/receive pairs, in deterministic order."""
        found: list[Commit] = []
        for group in self._groups.values():
            for offer in group.offers:
                if not offer.is_send:
                    continue
                target = owner.get(offer.partner_alias)
                if target is None:
                    continue
                peer_group = self._groups.get(target.name)
                if peer_group is None:
                    continue
                for peer_offer in peer_group.offers:
                    if peer_offer.is_send:
                        continue
                    if self._matches(offer, peer_offer, owner):
                        found.append(Commit(send=offer, recv=peer_offer))
        return found

    def candidates_for(self, group: OfferGroup,
                       owner: dict[Hashable, "Process"]) -> list[Commit]:
        """Matchable pairs involving ``group`` (which need not be posted yet)."""
        found: list[Commit] = []
        for offer in group.offers:
            if offer.is_send:
                target = owner.get(offer.partner_alias)
                if target is None or target.name not in self._groups:
                    continue
                for peer_offer in self._groups[target.name].offers:
                    if not peer_offer.is_send and self._matches(offer, peer_offer, owner):
                        found.append(Commit(send=offer, recv=peer_offer))
            else:
                for peer_group in self._groups.values():
                    for peer_offer in peer_group.offers:
                        if peer_offer.is_send and self._matches(peer_offer, offer, owner):
                            found.append(Commit(send=peer_offer, recv=offer))
        return found

    def remove_parties(self, commit: Commit) -> None:
        """Drop all offers of both processes involved in ``commit``."""
        self.withdraw(commit.sender.name)
        self.withdraw(commit.receiver.name)

    # ------------------------------------------------------------------
    # Incremental-board hook protocol (no-ops for the full-scan board)
    # ------------------------------------------------------------------

    def bind(self, owner: dict[Hashable, "Process"]) -> None:
        """Adopt the scheduler's live alias-owner mapping (no-op here)."""

    def on_alias_claimed(self, alias: Hashable, process: "Process") -> None:
        """``alias`` is now owned by ``process`` (no-op here)."""

    def on_alias_released(self, alias: Hashable, process: "Process") -> None:
        """``process`` no longer owns ``alias`` (no-op here)."""

    def compact(self) -> None:
        """Release any internal bookkeeping memory (no-op here)."""

    @property
    def needs_settle(self) -> bool:
        """Could a settle commit anything right now?

        The full-scan board cannot know without scanning, so it always
        answers True; the indexed board answers from its live pair set.
        The scheduler uses this to veto provably-empty settle passes.
        """
        return True

    @property
    def index_size(self) -> int:
        """Live candidate pairs held by the matcher's index (0: no index)."""
        return 0

    @property
    def dirty_events(self) -> int:
        """Cumulative index-maintenance events processed (0: no index)."""
        return 0

    @property
    def cache_hits(self) -> int:
        """Re-post pair-cache hits (0: no index, hence no cache)."""
        return 0

    @property
    def swept_pairs(self) -> int:
        """Suspended pairs torn down by stale-cache sweeps (0: no index)."""
        return 0

    def introspect(self) -> dict[str, Any]:
        """Deterministic snapshot of the matcher's internal structure.

        The full-scan board has no index, so only the group/offer census
        and the lifetime post count are reported; the indexed board
        extends this with its bucket and pair-set shape.  Used by the
        profiler's matcher-introspection report — never on a hot path.
        """
        offers = sum(len(group.offers) for group in self._groups.values())
        return {"board": type(self).__name__,
                "groups": len(self._groups),
                "offers": offers,
                "posts": self._post_seq}


def resume_values(commit: Commit) -> tuple[Any, Any]:
    """Build the (sender_result, receiver_result) for a committed pair."""
    send, recv = commit.send, commit.recv
    sender_identity = send.as_alias if send.as_alias is not None \
        else commit.sender.name

    if send.group.plain:
        sender_result: Any = None
    else:
        sender_result = SelectResult(index=send.index)

    if recv.group.plain:
        if recv.with_sender:
            receiver_result: Any = ReceivedMessage(send.value, sender_identity)
        else:
            receiver_result = send.value
    else:
        receiver_result = SelectResult(index=recv.index, value=send.value,
                                       sender=sender_identity)
    return sender_result, receiver_result


def else_result() -> SelectResult:
    """Result delivered when an immediate select takes its escape branch."""
    return SelectResult(index=ELSE_BRANCH)
