"""The rendezvous board: pending communication offers and their matching.

Synchronous communication is implemented as a matching market.  A blocked
process contributes an *offer group* containing one offer per enabled
branch (a plain send or receive is a group of one).  The board repeatedly
looks for a send offer and a receive offer that agree on addressing and tag,
commits one such pair (chosen by the scheduler's seeded RNG, which is where
CSP's nondeterministic choice lives), and removes *all* offers of both
processes involved — a process commits to at most one branch of a select.

Offers address partners through *aliases*.  An offer to an alias that no
live process currently owns simply stays pending; this directly implements
the paper's immediate-initiation rule that "a role is delayed only if it
attempts to communicate with an unfilled role": the role address becomes
owned the moment a process enrolls, and matching is retried.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Hashable, Iterable, TYPE_CHECKING

from .effects import (ELSE_BRANCH, Receive, ReceivedMessage, Send,
                      SelectResult)

if TYPE_CHECKING:  # pragma: no cover
    from .process import Process


@dataclasses.dataclass(slots=True)
class Offer:
    """One enabled communication branch of a blocked process."""

    group: "OfferGroup"
    index: int                       # branch index within the select
    is_send: bool
    partner_alias: Hashable | None   # Send.to, or Receive.frm (may be None)
    tag: Hashable
    value: Any = None                # payload for sends
    with_sender: bool = False        # receive wants (value, sender)
    as_alias: Hashable | None = None # identity the sender presents


@dataclasses.dataclass(slots=True)
class OfferGroup:
    """All offers of one blocked process, plus how to build its result."""

    process: "Process"
    offers: list[Offer]
    plain: bool                      # a bare Send/Receive, not a Select
    # Timer that expires this group (Deadline / ReceiveTimeout / Select
    # timeout); cancelled automatically when the group leaves the board.
    expiry: Any = None

    def describe(self) -> str:
        """Human-readable account of what the process is waiting for."""
        parts = []
        for offer in self.offers:
            if offer.is_send:
                parts.append(f"send to {offer.partner_alias!r}")
            elif offer.partner_alias is None:
                parts.append("receive from anyone")
            else:
                parts.append(f"receive from {offer.partner_alias!r}")
        return " | ".join(parts) or "empty select"


def make_group(process: "Process", branches: Iterable[Send | Receive],
               plain: bool, sender_alias: Hashable | None = None) -> OfferGroup:
    """Build an :class:`OfferGroup` from effect branches.

    ``sender_alias`` overrides the identity presented by send branches
    (used by role contexts so partners observe role addresses, not process
    names).
    """
    group = OfferGroup(process=process, offers=[], plain=plain)
    for index, branch in enumerate(branches):
        if isinstance(branch, Send):
            group.offers.append(Offer(
                group=group, index=index, is_send=True,
                partner_alias=branch.to, tag=branch.tag, value=branch.value,
                as_alias=branch.as_alias if branch.as_alias is not None
                else sender_alias))
        elif isinstance(branch, Receive):
            group.offers.append(Offer(
                group=group, index=index, is_send=False,
                partner_alias=branch.frm, tag=branch.tag,
                with_sender=branch.with_sender))
        else:
            raise TypeError(f"select branch must be Send or Receive, got {branch!r}")
    return group


@dataclasses.dataclass(frozen=True, slots=True)
class Commit:
    """A matched send/receive pair, ready to be performed."""

    send: Offer
    recv: Offer

    @property
    def sender(self) -> "Process":
        """The process whose send offer matched."""
        return self.send.group.process

    @property
    def receiver(self) -> "Process":
        """The process whose receive offer matched."""
        return self.recv.group.process


class RendezvousBoard:
    """Holds pending offer groups and finds matching pairs.

    The board does not own the alias registry; the scheduler passes a
    mapping from alias to owning process at matching time, because alias
    ownership changes as roles are filled and vacated.
    """

    def __init__(self) -> None:
        self._groups: dict[Hashable, OfferGroup] = {}

    def __len__(self) -> int:
        return len(self._groups)

    def __contains__(self, process_name: Hashable) -> bool:
        return process_name in self._groups

    @property
    def groups(self) -> dict[Hashable, OfferGroup]:
        """Pending offer groups, keyed by blocked process name."""
        return self._groups

    def post(self, group: OfferGroup) -> None:
        """Register a blocked process's offers."""
        name = group.process.name
        if name in self._groups:
            raise RuntimeError(f"process {name!r} already has pending offers")
        self._groups[name] = group

    def withdraw(self, process_name: Hashable) -> OfferGroup | None:
        """Remove and return the offers of ``process_name``, if any.

        Any expiry timer attached to the group is cancelled, so a timeout
        can never fire for an offer that already left the board.
        """
        group = self._groups.pop(process_name, None)
        if group is not None and group.expiry is not None:
            group.expiry.cancel()
        return group

    def _matches(self, send: Offer, recv: Offer,
                 owner: dict[Hashable, "Process"]) -> bool:
        sender = send.group.process
        receiver = recv.group.process
        if sender is receiver:
            return False
        target = owner.get(send.partner_alias)
        if target is not receiver:
            return False
        if recv.partner_alias is not None:
            source = owner.get(recv.partner_alias)
            if source is not sender:
                return False
        return send.tag == recv.tag

    def candidates(self, owner: dict[Hashable, "Process"]) -> list[Commit]:
        """All currently matchable send/receive pairs, in deterministic order."""
        found: list[Commit] = []
        for group in self._groups.values():
            for offer in group.offers:
                if not offer.is_send:
                    continue
                target = owner.get(offer.partner_alias)
                if target is None:
                    continue
                peer_group = self._groups.get(target.name)
                if peer_group is None:
                    continue
                for peer_offer in peer_group.offers:
                    if peer_offer.is_send:
                        continue
                    if self._matches(offer, peer_offer, owner):
                        found.append(Commit(send=offer, recv=peer_offer))
        return found

    def candidates_for(self, group: OfferGroup,
                       owner: dict[Hashable, "Process"]) -> list[Commit]:
        """Matchable pairs involving ``group`` (which need not be posted yet)."""
        found: list[Commit] = []
        for offer in group.offers:
            if offer.is_send:
                target = owner.get(offer.partner_alias)
                if target is None or target.name not in self._groups:
                    continue
                for peer_offer in self._groups[target.name].offers:
                    if not peer_offer.is_send and self._matches(offer, peer_offer, owner):
                        found.append(Commit(send=offer, recv=peer_offer))
            else:
                for peer_group in self._groups.values():
                    for peer_offer in peer_group.offers:
                        if peer_offer.is_send and self._matches(peer_offer, offer, owner):
                            found.append(Commit(send=peer_offer, recv=offer))
        return found

    def remove_parties(self, commit: Commit) -> None:
        """Drop all offers of both processes involved in ``commit``."""
        self.withdraw(commit.sender.name)
        self.withdraw(commit.receiver.name)


def resume_values(commit: Commit) -> tuple[Any, Any]:
    """Build the (sender_result, receiver_result) for a committed pair."""
    send, recv = commit.send, commit.recv
    sender_identity = send.as_alias if send.as_alias is not None \
        else commit.sender.name

    if send.group.plain:
        sender_result: Any = None
    else:
        sender_result = SelectResult(index=send.index)

    if recv.group.plain:
        if recv.with_sender:
            receiver_result: Any = ReceivedMessage(send.value, sender_identity)
        else:
            receiver_result = send.value
    else:
        receiver_result = SelectResult(index=recv.index, value=send.value,
                                       sender=sender_identity)
    return sender_result, receiver_result


def else_result() -> SelectResult:
    """Result delivered when an immediate select takes its escape branch."""
    return SelectResult(index=ELSE_BRANCH)
